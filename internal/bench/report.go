package bench

import (
	"encoding/json"
	"io"

	"wmstream/internal/sim"
	"wmstream/internal/telemetry"
)

// Record is one benchmark run in the machine-readable report: the
// headline numbers plus the per-unit telemetry (utilization and stall
// attribution) the run collected.
type Record struct {
	Program string `json:"program"`
	Level   int    `json:"level"`
	// Engine names the simulation engine that produced the record
	// (translated, fast, or reference), so speed numbers from
	// different engines are never conflated in downstream diffs.
	Engine       string `json:"engine"`
	Cycles       int64  `json:"cycles"`
	Instructions int64  `json:"instructions"`
	MemReads     int64  `json:"mem_reads"`
	MemWrites    int64  `json:"mem_writes"`
	StreamElems  int64  `json:"stream_elems"`
	// StreamThroughput is stream elements moved per cycle — the
	// paper's headline metric approaches 1.0 for the streamed dot
	// product.
	StreamThroughput float64 `json:"stream_throughput"`
	// HostNS is the host wall-clock time of the simulation and
	// SimCyclesPerSec the resulting simulation speed — the simulator's
	// own performance, as opposed to the simulated machine's.
	HostNS          int64        `json:"host_ns"`
	SimCyclesPerSec float64      `json:"sim_cycles_per_sec"`
	Units           []UnitRecord `json:"units"`
}

// UnitRecord is one functional unit's attribution in a Record.
type UnitRecord struct {
	Unit           string           `json:"unit"`
	Issued         int64            `json:"issued"`
	Idle           int64            `json:"idle"`
	UtilizationPct float64          `json:"utilization_pct"`
	Stalls         map[string]int64 `json:"stalls,omitempty"`
}

// NewRecord builds a Record from a measured result.
func NewRecord(r Result) Record {
	rec := Record{
		Program:      r.Program,
		Level:        r.Level,
		Engine:       r.Engine.String(),
		Cycles:       r.Stats.Cycles,
		Instructions: r.Stats.Instructions,
		MemReads:     r.Stats.MemReads,
		MemWrites:    r.Stats.MemWrites,
		StreamElems:  r.Stats.StreamElems,
		HostNS:       r.HostNS,
	}
	if r.Stats.Cycles > 0 {
		rec.StreamThroughput = float64(r.Stats.StreamElems) / float64(r.Stats.Cycles)
	}
	if r.HostNS > 0 {
		rec.SimCyclesPerSec = float64(r.Stats.Cycles) / (float64(r.HostNS) / 1e9)
	}
	for _, u := range r.Stats.Units {
		ur := UnitRecord{
			Unit:           u.Name,
			Issued:         u.Issued(),
			Idle:           u.Counts[telemetry.CauseIdle],
			UtilizationPct: u.Utilization(),
		}
		for c := int(telemetry.CauseIdle) + 1; c < telemetry.NumCauses; c++ {
			if n := u.Counts[c]; n > 0 {
				if ur.Stalls == nil {
					ur.Stalls = map[string]int64{}
				}
				ur.Stalls[telemetry.Cause(c).String()] = n
			}
		}
		rec.Units = append(rec.Units, ur)
	}
	return rec
}

// WriteJSON measures every benchmark at each level on the given
// engine and writes the records as an indented JSON array
// (encoding/json sorts map keys, so everything except the host
// wall-clock fields is deterministic for identical runs).
func WriteJSON(w io.Writer, programs []Program, levels []int, engine sim.Engine) error {
	var records []Record
	for _, p := range programs {
		for _, lv := range levels {
			r, err := MeasureEngine(p, lv, engine)
			if err != nil {
				return err
			}
			records = append(records, NewRecord(r))
		}
	}
	return writeRecords(w, records)
}

func writeRecords(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
