package scalarsim

import (
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

func model() CostModel {
	return CostModel{
		Name:  "test",
		Issue: 1, IntOp: 1, IntMul: 3, IntDiv: 10,
		FpAdd: 2, FpMul: 3, FpDiv: 8,
		Load: 2, FLoad: 4, Store: 2, FStore: 4,
		Branch: 2, Jump: 1, Cvt: 2, MathOp: 20,
		AddrOp: 1, MoveReg: 1,
	}
}

func run(t *testing.T, src string, cm CostModel) Stats {
	t.Helper()
	p, err := rtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	stats, err := Run(p, cm, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats
}

func TestSequentialSemantics(t *testing.T) {
	stats := run(t, `
.entry main
.data g 8 align=8
.func main
r2 := 6
r3 := (r2 * 7)
r0 := r3
s32r r0, _g
l32r r0, _g
r4 := r0
puti r4
halt
.end
`, model())
	if stats.Output != "42" {
		t.Errorf("output = %q", stats.Output)
	}
	if stats.MemReads != 1 || stats.MemWrites != 1 {
		t.Errorf("mem = %d/%d", stats.MemReads, stats.MemWrites)
	}
}

func TestLoopAndBranches(t *testing.T) {
	stats := run(t, `
.entry main
.func main
r2 := 0
r3 := 1
L1:
r2 := (r2 + r3)
r3 := (r3 + 1)
r31 := (r3 <= 10)
jumpTr L1
puti r2
halt
.end
`, model())
	if stats.Output != "55" {
		t.Errorf("output = %q", stats.Output)
	}
}

func TestCostAccounting(t *testing.T) {
	cm := model()
	// One int op (issue 1 + op 1) then halt (free): 2 cycles.
	s := run(t, ".entry main\n.func main\nr2 := (r3 + r4)\nhalt\n.end\n", cm)
	if s.Cycles != cm.Issue+cm.IntOp {
		t.Errorf("int op cycles = %d, want %d", s.Cycles, cm.Issue+cm.IntOp)
	}
	// Float multiply costs more than add.
	sAdd := run(t, ".entry main\n.func main\nf2 := (f3 + f4)\nhalt\n.end\n", cm)
	sMul := run(t, ".entry main\n.func main\nf2 := (f3 * f4)\nhalt\n.end\n", cm)
	if sMul.Cycles-sAdd.Cycles != cm.FpMul-cm.FpAdd {
		t.Errorf("fp mul/add delta = %d", sMul.Cycles-sAdd.Cycles)
	}
	// A float load is dearer than an int load.
	sIL := run(t, ".entry main\n.data g 8 align=8\n.func main\nl32r r0, _g\nr2 := r0\nhalt\n.end\n", cm)
	sFL := run(t, ".entry main\n.data g 8 align=8\n.func main\nl64f f0, _g\nf2 := f0\nhalt\n.end\n", cm)
	if sFL.Cycles-sIL.Cycles != cm.FLoad-cm.Load {
		t.Errorf("fload/load delta = %d, want %d", sFL.Cycles-sIL.Cycles, cm.FLoad-cm.Load)
	}
}

func TestFIFOMovesAreFree(t *testing.T) {
	cm := model()
	// The dequeue "r2 := r0" is the register-write half of the load on a
	// conventional machine: it must not be charged a second issue.
	s1 := run(t, ".entry main\n.data g 8 align=8\n.func main\nl32r r0, _g\nr2 := r0\nhalt\n.end\n", cm)
	want := cm.Issue + cm.Load
	if s1.Cycles != want {
		t.Errorf("load+dequeue cycles = %d, want %d", s1.Cycles, want)
	}
}

func TestAddressingModeCosts(t *testing.T) {
	cm := model()
	// reg+const and scaled-index addressing are free; deeper expressions
	// pay AddrOp.
	free := run(t, ".entry main\n.data g 64 align=8\n.func main\nr3 := _g\nl32r r0, (r3 + 8)\nr2 := r0\nhalt\n.end\n", cm)
	scaled := run(t, ".entry main\n.data g 64 align=8\n.func main\nr3 := _g\nr4 := 2\nl32r r0, ((r4 << 2) + r3)\nr2 := r0\nhalt\n.end\n", cm)
	if scaled.Cycles-free.Cycles != cm.Issue+cm.MoveReg { // the extra r4 := 2 only
		t.Errorf("scaled addressing charged extra: %d vs %d", scaled.Cycles, free.Cycles)
	}
}

func TestStreamInstructionsRejected(t *testing.T) {
	p, err := rtl.Parse(`
.entry main
.func main
r2 := 4
sin32r r0, r2, 4, 4
halt
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, model(), 1000)
	if err == nil || !strings.Contains(err.Error(), "stream") {
		t.Fatalf("stream instruction accepted by scalar machine: %v", err)
	}
}

func TestCallReturnSequential(t *testing.T) {
	stats := run(t, `
.entry main
.func main
r2 := 5
call dbl
puti r2
halt
.end
.func dbl
r2 := (r2 + r2)
ret
.end
`, model())
	if stats.Output != "10" {
		t.Errorf("output = %q", stats.Output)
	}
}

func TestInstructionLimit(t *testing.T) {
	p, err := rtl.Parse(".entry main\n.func main\nL1:\njump L1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, model(), 100); err == nil {
		t.Fatal("infinite loop not caught by instruction limit")
	}
}
