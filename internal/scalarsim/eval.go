package scalarsim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
)

// eval computes raw bits sequentially; FIFO register reads pop pending
// load data immediately.
func (in *interp) eval(e rtl.Expr) (uint64, error) {
	switch x := e.(type) {
	case rtl.RegX:
		r := x.Reg
		if r.IsZero() {
			return 0, nil
		}
		if r.IsFIFO() {
			q := in.fifo[r.Class][r.N]
			if len(q) == 0 {
				return 0, fmt.Errorf("scalarsim: FIFO %s read with no pending load", r)
			}
			in.fifo[r.Class][r.N] = q[1:]
			return q[0], nil
		}
		return in.regs[r.Class][r.N], nil
	case rtl.Imm:
		return uint64(x.V), nil
	case rtl.FImm:
		return math.Float64bits(x.V), nil
	case rtl.Sym:
		addr, ok := in.img.Globals[x.Name]
		if !ok {
			return 0, fmt.Errorf("scalarsim: unknown symbol %q", x.Name)
		}
		return uint64(addr + x.Off), nil
	case rtl.Bin:
		l, err := in.eval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(x.R)
		if err != nil {
			return 0, err
		}
		if x.L.Class() == rtl.Float {
			fv, ok := rtl.EvalFloatOp(x.Op, math.Float64frombits(l), math.Float64frombits(r))
			if !ok {
				return 0, fmt.Errorf("scalarsim: float op %s failed", x.Op)
			}
			if x.Op.IsRelational() {
				return uint64(int64(fv)), nil
			}
			return math.Float64bits(fv), nil
		}
		iv, ok := rtl.EvalIntOp(x.Op, int64(l), int64(r))
		if !ok {
			return 0, fmt.Errorf("scalarsim: int op %s failed", x.Op)
		}
		return uint64(iv), nil
	case rtl.Un:
		v, err := in.eval(x.X)
		if err != nil {
			return 0, err
		}
		if x.X.Class() == rtl.Float {
			f, ok := rtl.EvalUnFloat(x.Op, math.Float64frombits(v))
			if !ok {
				return 0, fmt.Errorf("scalarsim: bad float unary %s", x.Op)
			}
			return math.Float64bits(f), nil
		}
		iv, ok := rtl.EvalUnInt(x.Op, int64(v))
		if !ok {
			return 0, fmt.Errorf("scalarsim: bad int unary %s", x.Op)
		}
		return uint64(iv), nil
	case rtl.Cvt:
		v, err := in.eval(x.X)
		if err != nil {
			return 0, err
		}
		if x.To == rtl.Float && x.X.Class() == rtl.Int {
			return math.Float64bits(float64(int64(v))), nil
		}
		if x.To == rtl.Int && x.X.Class() == rtl.Float {
			return uint64(int64(math.Float64frombits(v))), nil
		}
		return v, nil
	case rtl.Mem:
		addr, err := in.eval(x.Addr)
		if err != nil {
			return 0, err
		}
		return in.readChecked(int64(addr), x.Size, x.Cl)
	}
	return 0, fmt.Errorf("scalarsim: cannot evaluate %T", e)
}

func (in *interp) readChecked(addr int64, size int, c rtl.Class) (uint64, error) {
	return in.read(addr, size, c)
}

func (in *interp) read(addr int64, size int, c rtl.Class) (uint64, error) {
	if addr < 0 || addr+int64(size) > int64(len(in.mem)) {
		return 0, fmt.Errorf("scalarsim: read out of range: %d", addr)
	}
	var raw uint64
	for k := size - 1; k >= 0; k-- {
		raw = raw<<8 | uint64(in.mem[addr+int64(k)])
	}
	if c == rtl.Float {
		return raw, nil
	}
	switch size {
	case 1:
		return uint64(int64(int8(raw))), nil
	case 4:
		return uint64(int64(int32(raw))), nil
	default:
		return raw, nil
	}
}

func (in *interp) write(addr int64, size int, val uint64) error {
	if addr < 0 || addr+int64(size) > int64(len(in.mem)) {
		return fmt.Errorf("scalarsim: write out of range: %d", addr)
	}
	for k := 0; k < size; k++ {
		in.mem[addr+int64(k)] = byte(val >> (8 * k))
	}
	return nil
}

// addrCost charges for address arithmetic the machine's addressing
// modes cannot absorb: register and register+constant (and scaled-index
// base+reg forms common on CISC) are free; anything deeper costs AddrOp
// per operator.
func (in *interp) addrCost(addr rtl.Expr) int64 {
	ops := rtl.ExprSize(addr)
	free := freeAddrOps(addr)
	extra := int64(ops - free)
	if extra <= 0 {
		return 0
	}
	return extra * in.cm.AddrOp
}

// freeAddrOps returns how many operators of the address expression the
// addressing mode absorbs: one + with a constant or register index, and
// a << scale on the index.
func freeAddrOps(e rtl.Expr) int {
	b, ok := e.(rtl.Bin)
	if !ok || b.Op != rtl.Add {
		return 0
	}
	free := 1
	if sh, ok := b.L.(rtl.Bin); ok && sh.Op == rtl.Shl {
		if _, isImm := sh.R.(rtl.Imm); isImm {
			free++
		}
	}
	if sh, ok := b.R.(rtl.Bin); ok && sh.Op == rtl.Shl {
		if _, isImm := sh.R.(rtl.Imm); isImm {
			free++
		}
	}
	return free
}

// costOfAssign charges an arithmetic instruction by its deepest
// operation.  Pure FIFO moves are free: on a conventional machine the
// dequeue "r2 := r0" is the register-write half of the load, and the
// enqueue "r0 := r2" the data half of the store — neither is a separate
// instruction.
func costOfAssign(cm CostModel, i *rtl.Instr) int64 {
	if rx, ok := i.Src.(rtl.RegX); ok && (rx.Reg.IsFIFO() || i.Dst.IsFIFO()) {
		return 0
	}
	cost := cm.Issue
	isMove := true
	rtl.WalkExpr(i.Src, func(e rtl.Expr) {
		switch x := e.(type) {
		case rtl.Bin:
			isMove = false
			if x.L.Class() == rtl.Float {
				switch x.Op {
				case rtl.Mul:
					cost += cm.FpMul
				case rtl.Div:
					cost += cm.FpDiv
				default:
					cost += cm.FpAdd
				}
			} else {
				switch x.Op {
				case rtl.Mul:
					cost += cm.IntMul
				case rtl.Div, rtl.Rem:
					cost += cm.IntDiv
				default:
					cost += cm.IntOp
				}
			}
		case rtl.Un:
			isMove = false
			if x.Op >= rtl.Sqrt {
				cost += cm.MathOp
			} else if x.X.Class() == rtl.Float {
				cost += cm.FpAdd
			} else {
				cost += cm.IntOp
			}
		case rtl.Cvt:
			isMove = false
			cost += cm.Cvt
		case rtl.Mem:
			if x.Cl == rtl.Float {
				cost += cm.FLoad
			} else {
				cost += cm.Load
			}
		}
	})
	if isMove {
		cost += cm.MoveReg
	}
	return cost
}
