// Package scalarsim executes RTL programs as a conventional
// single-pipeline processor would: strictly sequentially, charging each
// instruction a machine-specific cost.  It is the substrate for the
// paper's Table I, which measured the effect of recurrence optimization
// on five machines (Sun 3/280, HP 9000/345, VAX 8600, Motorola 88100
// and WM).  The four stock machines of 1991 cannot be rerun, so their
// per-operation latencies are modeled from period documentation (see
// package machine); the *fraction of loop time spent in the eliminated
// memory reference* — which is what Table I reports — depends only on
// those relative costs.
//
// The interpreter accepts the same RTL as the WM simulator.  FIFO
// register reads/writes behave as ordinary scalar moves executed in
// order (the load's datum is available immediately at the dequeue),
// which is exactly how the equivalent load-to-register instruction
// behaves on a conventional machine.
package scalarsim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// CostModel gives per-operation cycle costs for one machine.
type CostModel struct {
	Name string

	Issue   int64 // per-instruction decode/issue overhead
	IntOp   int64 // integer ALU operation
	IntMul  int64
	IntDiv  int64
	FpAdd   int64 // also fp subtract and compares
	FpMul   int64
	FpDiv   int64
	Load    int64 // integer load (beyond Issue)
	FLoad   int64 // floating load
	Store   int64
	FStore  int64
	Branch  int64 // taken conditional branch
	Jump    int64 // unconditional branch
	Cvt     int64
	MathOp  int64 // sqrt/sin/... library call cost
	AddrOp  int64 // each address-expression operator beyond reg+const
	MoveReg int64 // register-to-register move
}

// Stats reports an execution.
type Stats struct {
	Cycles       int64
	Instructions int64
	MemReads     int64
	MemWrites    int64
	Output       string
}

// Run executes the program sequentially under the cost model.
// Programs containing stream instructions are rejected: conventional
// machines have no SCUs (the compiler's scalar pipeline never emits
// them).
func Run(p *rtl.Program, cm CostModel, maxInstr int64) (Stats, error) {
	img, err := sim.Link(p)
	if err != nil {
		return Stats{}, err
	}
	stackTop := int64(1 << 20)
	if img.DataEnd+65536 > stackTop {
		stackTop = ((img.DataEnd + 65536 + 4095) &^ 4095) + 1<<20
	}
	in := &interp{img: img, cm: cm, mem: make([]byte, stackTop+4096)}
	for _, c := range img.InitChunks() {
		copy(in.mem[c.Addr:], c.Data)
	}
	in.regs[rtl.Int][rtl.SP] = uint64(stackTop)
	return in.run(maxInstr)
}

type interp struct {
	img  *sim.Image
	cm   CostModel
	mem  []byte
	regs [2][rtl.NumArchRegs]uint64
	// fifoVal holds pending load data per (class, fifo): sequential
	// execution means these behave like hidden scalar registers.
	fifo   [2][2][]uint64
	outVal [2][2][]uint64
	out    []byte
	stats  Stats
	cc     bool
	cycles int64
}

func (in *interp) charge(c int64) { in.cycles += c }

func (in *interp) run(maxInstr int64) (Stats, error) {
	pc := in.img.Entry
	for {
		if in.stats.Instructions > maxInstr {
			return in.stats, fmt.Errorf("scalarsim: exceeded %d instructions", maxInstr)
		}
		if pc < 0 || pc >= len(in.img.Code) {
			return in.stats, fmt.Errorf("scalarsim: pc out of range: %d", pc)
		}
		i := in.img.Code[pc]
		target := in.img.Target[pc]
		in.stats.Instructions++
		next := pc + 1
		switch i.Kind {
		case rtl.KAssign:
			v, err := in.eval(i.Src)
			if err != nil {
				return in.stats, err
			}
			in.charge(costOfAssign(in.cm, i))
			d := i.Dst
			switch {
			case d.IsZero():
				if i.IsCompare() {
					in.cc = v != 0
				}
			case d.IsFIFO():
				in.outVal[d.Class][d.N] = append(in.outVal[d.Class][d.N], v)
			default:
				in.regs[d.Class][d.N] = v
			}
		case rtl.KLoad:
			addr, err := in.eval(i.Addr)
			if err != nil {
				return in.stats, err
			}
			v, err := in.read(int64(addr), i.MemSize, i.MemClass)
			if err != nil {
				return in.stats, err
			}
			in.fifo[i.MemClass][i.FIFO.N] = append(in.fifo[i.MemClass][i.FIFO.N], v)
			if i.MemClass == rtl.Float {
				in.charge(in.cm.Issue + in.cm.FLoad + in.addrCost(i.Addr))
			} else {
				in.charge(in.cm.Issue + in.cm.Load + in.addrCost(i.Addr))
			}
			in.stats.MemReads++
		case rtl.KStore:
			addr, err := in.eval(i.Addr)
			if err != nil {
				return in.stats, err
			}
			q := in.outVal[i.MemClass][i.FIFO.N]
			if len(q) == 0 {
				return in.stats, fmt.Errorf("scalarsim: store with empty output queue at %d", pc)
			}
			in.outVal[i.MemClass][i.FIFO.N] = q[1:]
			if err := in.write(int64(addr), i.MemSize, q[0]); err != nil {
				return in.stats, err
			}
			if i.MemClass == rtl.Float {
				in.charge(in.cm.Issue + in.cm.FStore + in.addrCost(i.Addr))
			} else {
				in.charge(in.cm.Issue + in.cm.Store + in.addrCost(i.Addr))
			}
			in.stats.MemWrites++
		case rtl.KJump:
			in.charge(in.cm.Issue + in.cm.Jump)
			next = target
		case rtl.KCondJump:
			in.charge(in.cm.Issue + in.cm.Branch)
			if in.cc == i.Sense {
				next = target
			}
		case rtl.KCall:
			in.charge(in.cm.Issue + in.cm.Branch)
			in.regs[rtl.Int][rtl.LR] = uint64(pc + 1)
			next = target
		case rtl.KRet:
			in.charge(in.cm.Issue + in.cm.Branch)
			next = int(in.regs[rtl.Int][rtl.LR])
		case rtl.KHalt:
			in.stats.Cycles = in.cycles
			in.stats.Output = string(in.out)
			return in.stats, nil
		case rtl.KPut:
			v, err := in.eval(i.Src)
			if err != nil {
				return in.stats, err
			}
			in.charge(in.cm.Issue + in.cm.IntOp)
			in.put(i.Fmt, v, i.Src.Class())
		case rtl.KStreamIn, rtl.KStreamOut, rtl.KStreamStop, rtl.KJumpNotDone:
			return in.stats, fmt.Errorf("scalarsim: stream instruction %q on a conventional machine", i)
		default:
			return in.stats, fmt.Errorf("scalarsim: cannot execute %q", i)
		}
		pc = next
	}
}

func (in *interp) put(format byte, v uint64, c rtl.Class) {
	switch format {
	case 'c':
		in.out = append(in.out, byte(v))
	case 'i':
		in.out = append(in.out, []byte(fmt.Sprintf("%d", int64(v)))...)
	case 'd':
		f := math.Float64frombits(v)
		if c == rtl.Int {
			f = float64(int64(v))
		}
		in.out = append(in.out, []byte(fmt.Sprintf("%g", f))...)
	}
}
