package machine

import (
	"fmt"
	"strings"

	"wmstream/internal/rtl"
)

// M68KListing renders a function in Motorola 68020 assembler flavor,
// reproducing the presentation of the paper's Figure 6.  The
// translation is syntactic: integer registers map to d/a registers,
// float registers to fp registers, load/dequeue pairs to fmoved/movl
// with auto-increment when a derived pointer stepped by the element
// size feeds them.  It exists for the figure reproduction; the cost
// model (not this listing) is what Table I measures.
func M68KListing(f *rtl.Func) string { return m68kListing(f, false) }

// M68KListingDebug is M68KListing with "| line N" comments wherever
// the generating source line changes, linking the scalar listing back
// to the Mini-C source the same way the WM profiler does.
func M68KListingDebug(f *rtl.Func) string { return m68kListing(f, true) }

func m68kListing(f *rtl.Func, debug bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| %s (MC68020/68881 flavor)\n", f.Name)
	autoinc := findAutoIncrement(f)
	skip := map[int]bool{}
	lastLine := 0
	for n, i := range f.Code {
		if skip[n] {
			continue
		}
		if debug && i.Line > 0 && i.Line != lastLine {
			fmt.Fprintf(&b, "| line %d\n", i.Line)
			lastLine = i.Line
		}
		switch i.Kind {
		case rtl.KLabel:
			fmt.Fprintf(&b, "%s:\n", i.Name)
		case rtl.KLoad:
			// Pair with the following dequeue when adjacent.
			dst := "fp0"
			if n+1 < len(f.Code) {
				if d := f.Code[n+1]; d.Kind == rtl.KAssign {
					if rx, ok := d.Src.(rtl.RegX); ok && rx.Reg.IsFIFO() {
						dst = m68kReg(d.Dst)
						skip[n+1] = true
					}
				}
			}
			mnem := "movl"
			if i.MemClass == rtl.Float {
				mnem = "fmoved"
			}
			fmt.Fprintf(&b, "\t%s\t%s,%s\n", mnem, m68kAddr(i.Addr, autoinc), dst)
		case rtl.KStore:
			// The datum is the closest preceding enqueue.
			src := "fp0"
			for k := n - 1; k >= 0 && k > n-8; k-- {
				e := f.Code[k]
				if e.Kind == rtl.KAssign && e.Dst.IsFIFO() && e.Dst.Class == i.MemClass {
					if rx, ok := e.Src.(rtl.RegX); ok {
						src = m68kReg(rx.Reg)
					}
					break
				}
			}
			mnem := "movl"
			if i.MemClass == rtl.Float {
				mnem = "fmoved"
			}
			fmt.Fprintf(&b, "\t%s\t%s,%s\n", mnem, src, m68kAddr(i.Addr, autoinc))
		case rtl.KAssign:
			emitM68KAssign(&b, i, autoinc)
		case rtl.KJump:
			fmt.Fprintf(&b, "\tjra\t%s\n", i.Target)
		case rtl.KCondJump:
			cc := "jne"
			if !i.Sense {
				cc = "jeq"
			}
			fmt.Fprintf(&b, "\t%s\t%s\n", cc, i.Target)
		case rtl.KRet:
			fmt.Fprintf(&b, "\trts\n")
		case rtl.KHalt:
			fmt.Fprintf(&b, "\ttrap\t#0\n")
		case rtl.KCall:
			fmt.Fprintf(&b, "\tjbsr\t%s\n", i.Name)
		case rtl.KPut:
			fmt.Fprintf(&b, "\tjbsr\t_putchar\n")
		}
	}
	return b.String()
}

// findAutoIncrement identifies derived pointers stepped by a constant
// equal to an access size: their uses render as aX@+.
func findAutoIncrement(f *rtl.Func) map[rtl.Reg]bool {
	out := map[rtl.Reg]bool{}
	for _, i := range f.Code {
		if i.Kind != rtl.KAssign {
			continue
		}
		b, ok := i.Src.(rtl.Bin)
		if !ok || b.Op != rtl.Add {
			continue
		}
		rx, lok := b.L.(rtl.RegX)
		c, rok := b.R.(rtl.Imm)
		if lok && rok && rx.Reg == i.Dst && (c.V == 1 || c.V == 4 || c.V == 8) {
			out[i.Dst] = true
		}
	}
	return out
}

func emitM68KAssign(b *strings.Builder, i *rtl.Instr, autoinc map[rtl.Reg]bool) {
	// Pointer bumps of auto-increment registers vanish into the @+
	// addressing mode.
	if src, ok := i.Src.(rtl.Bin); ok && src.Op == rtl.Add {
		if rx, isReg := src.L.(rtl.RegX); isReg && rx.Reg == i.Dst && autoinc[i.Dst] {
			if _, isImm := src.R.(rtl.Imm); isImm {
				return
			}
		}
	}
	if i.Dst.IsFIFO() {
		// Enqueues that just name a register were folded into the store.
		if _, isReg := i.Src.(rtl.RegX); isReg {
			return
		}
	}
	switch src := i.Src.(type) {
	case rtl.Imm:
		fmt.Fprintf(b, "\tmoveq\t#%d,%s\n", src.V, m68kReg(i.Dst))
	case rtl.Sym:
		fmt.Fprintf(b, "\tlea\t_%s", src.Name)
		if src.Off != 0 {
			fmt.Fprintf(b, "+%d", src.Off)
		}
		fmt.Fprintf(b, ",%s\n", m68kReg(i.Dst))
	case rtl.FImm:
		fmt.Fprintf(b, "\tfmoved\t#%g,%s\n", src.V, m68kReg(i.Dst))
	case rtl.RegX:
		fmt.Fprintf(b, "\tmovl\t%s,%s\n", m68kReg(src.Reg), m68kReg(i.Dst))
	case rtl.Bin:
		op := m68kOp(src.Op, src.L.Class() == rtl.Float)
		if i.IsCompare() {
			fmt.Fprintf(b, "\tcmpl\t%s,%s\n", m68kOperand(src.R, autoinc), m68kOperand(src.L, autoinc))
			return
		}
		fmt.Fprintf(b, "\t%s\t%s,%s\n", op, m68kOperand(src.R, autoinc), m68kReg(i.Dst))
	case rtl.Un:
		fmt.Fprintf(b, "\t%s\t%s\n", src.Op, m68kReg(i.Dst))
	case rtl.Cvt:
		fmt.Fprintf(b, "\tfmovel\t%s,%s\n", m68kOperand(src.X, autoinc), m68kReg(i.Dst))
	}
}

func m68kOp(op rtl.Op, float bool) string {
	if float {
		switch op {
		case rtl.Add:
			return "faddx"
		case rtl.Sub:
			return "fsubx"
		case rtl.Mul:
			return "fmulx"
		case rtl.Div:
			return "fdivx"
		}
		return "f" + op.String()
	}
	switch op {
	case rtl.Add:
		return "addl"
	case rtl.Sub:
		return "subl"
	case rtl.Mul:
		return "mulsl"
	case rtl.Div:
		return "divsl"
	case rtl.Shl:
		return "lsll"
	case rtl.Shr:
		return "asrl"
	case rtl.And:
		return "andl"
	case rtl.Or:
		return "orl"
	case rtl.Xor:
		return "eorl"
	}
	return op.String()
}

func m68kOperand(e rtl.Expr, autoinc map[rtl.Reg]bool) string {
	switch x := e.(type) {
	case rtl.RegX:
		return m68kReg(x.Reg)
	case rtl.Imm:
		return fmt.Sprintf("#%d", x.V)
	default:
		return e.String()
	}
}

func m68kAddr(addr rtl.Expr, autoinc map[rtl.Reg]bool) string {
	switch x := addr.(type) {
	case rtl.RegX:
		if autoinc[x.Reg] {
			return m68kAReg(x.Reg) + "@+"
		}
		return m68kAReg(x.Reg) + "@"
	case rtl.Sym:
		if x.Off != 0 {
			return fmt.Sprintf("(_%s+%d)", x.Name, x.Off)
		}
		return "_" + x.Name
	case rtl.Bin:
		if x.Op == rtl.Add {
			if base, ok := x.R.(rtl.RegX); ok {
				if sh, ok := x.L.(rtl.Bin); ok && sh.Op == rtl.Shl {
					if idx, ok := sh.L.(rtl.RegX); ok {
						if sc, ok := sh.R.(rtl.Imm); ok {
							return fmt.Sprintf("%s@(0,%s:l:%d)", m68kAReg(base.Reg), m68kReg(idx.Reg), 1<<uint(sc.V))
						}
					}
				}
				if off, ok := x.L.(rtl.Imm); ok {
					return fmt.Sprintf("%s@(%d)", m68kAReg(base.Reg), off.V)
				}
			}
			if off, ok := x.R.(rtl.Imm); ok {
				if base, ok := x.L.(rtl.RegX); ok {
					return fmt.Sprintf("%s@(%d)", m68kAReg(base.Reg), off.V)
				}
			}
		}
	}
	return addr.String()
}

// m68kReg maps RTL registers to the 68020's split register files: data
// registers for integer values, fp registers for floats.
func m68kReg(r rtl.Reg) string {
	if r.Class == rtl.Float {
		return fmt.Sprintf("fp%d", r.N%8)
	}
	return fmt.Sprintf("d%d", r.N%8)
}

// m68kAReg renders a register used as a base address as an address
// register.
func m68kAReg(r rtl.Reg) string {
	return fmt.Sprintf("a%d", r.N%8)
}
