// Package machine holds the cost models of the conventional machines
// in the paper's Table I, plus the Motorola 68020-flavored listing
// printer used to reproduce Figure 6.
//
// The four stock machines cannot be rerun, so per-operation cycle
// costs are modeled from period documentation: the MC68020/68881 user
// manuals (FP through the coprocessor interface costs tens of cycles;
// memory-to-FP moves ~50), the MC68030/68882 (same structure, faster),
// the VAX 8600 (microcoded, relatively uniform costs, fast operand
// fetch), and the MC88100 (pipelined single-cycle issue with short FP
// latencies).  Table I depends only on the *relative* weight of one
// double-precision load against the rest of the loop, which these
// tables capture; EXPERIMENTS.md compares the resulting percentages
// against the paper's.
package machine

import "wmstream/internal/scalarsim"

// Sun3_280 models the Sun 3/280: MC68020 @ 25 MHz with an MC68881
// floating-point coprocessor.  FP operands move over the coprocessor
// interface, making double loads very expensive relative to integer
// work — which is why this machine shows the largest gain from
// removing a memory reference (paper: 19%).
func Sun3_280() scalarsim.CostModel {
	return scalarsim.CostModel{
		Name:  "Sun 3/280",
		Issue: 3, IntOp: 3, IntMul: 25, IntDiv: 40,
		FpAdd: 35, FpMul: 45, FpDiv: 90,
		Load: 6, FLoad: 88, Store: 6, FStore: 55,
		Branch: 8, Jump: 6, Cvt: 30, MathOp: 400,
		AddrOp: 2, MoveReg: 2,
	}
}

// HP9000_345 models the HP 9000/345: MC68030 @ 50 MHz with an MC68882.
// Same structure as the Sun but a faster coprocessor interface
// (paper: 12%).
func HP9000_345() scalarsim.CostModel {
	return scalarsim.CostModel{
		Name:  "HP 9000/345",
		Issue: 2, IntOp: 2, IntMul: 20, IntDiv: 35,
		FpAdd: 35, FpMul: 45, FpDiv: 75,
		Load: 4, FLoad: 28, Store: 4, FStore: 20,
		Branch: 6, Jump: 5, Cvt: 22, MathOp: 320,
		AddrOp: 1, MoveReg: 2,
	}
}

// VAX8600 models the VAX 8600: microcoded with a fast operand-fetch
// pipeline, so memory operands are nearly free relative to the slow FP
// execution — the smallest gain in Table I (paper: 6%).
func VAX8600() scalarsim.CostModel {
	return scalarsim.CostModel{
		Name:  "VAX 8600",
		Issue: 2, IntOp: 3, IntMul: 16, IntDiv: 30,
		FpAdd: 30, FpMul: 40, FpDiv: 70,
		Load: 2, FLoad: 8, Store: 2, FStore: 8,
		Branch: 6, Jump: 4, Cvt: 16, MathOp: 280,
		AddrOp: 0, MoveReg: 2,
	}
}

// M88100 models the Motorola 88100: a pipelined RISC with short FP
// latencies and cheap loads (paper: 7%).
func M88100() scalarsim.CostModel {
	return scalarsim.CostModel{
		Name:  "Motorola 88100",
		Issue: 1, IntOp: 1, IntMul: 4, IntDiv: 15,
		FpAdd: 6, FpMul: 9, FpDiv: 30,
		Load: 1, FLoad: 2, Store: 1, FStore: 2,
		Branch: 2, Jump: 1, Cvt: 4, MathOp: 150,
		AddrOp: 1, MoveReg: 1,
	}
}

// TableIMachines returns the four conventional machines of Table I, in
// the paper's order (the fifth row, WM, runs on the cycle-level
// simulator).
func TableIMachines() []scalarsim.CostModel {
	return []scalarsim.CostModel{Sun3_280(), HP9000_345(), VAX8600(), M88100()}
}
