package machine

import (
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

func TestTableIMachinesComplete(t *testing.T) {
	ms := TableIMachines()
	if len(ms) != 4 {
		t.Fatalf("machines = %d, want 4", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
		// Every cost must be positive (a zero would silently hide a
		// class of work from Table I).
		for field, v := range map[string]int64{
			"Issue": m.Issue, "IntOp": m.IntOp, "FpAdd": m.FpAdd,
			"FpMul": m.FpMul, "Load": m.Load, "FLoad": m.FLoad,
			"Store": m.Store, "FStore": m.FStore, "Branch": m.Branch,
		} {
			if v <= 0 {
				t.Errorf("%s: %s = %d", m.Name, field, v)
			}
		}
	}
	for _, want := range []string{"Sun 3/280", "HP 9000/345", "VAX 8600", "Motorola 88100"} {
		if !names[want] {
			t.Errorf("missing machine %q", want)
		}
	}
}

func TestRelativeCostStructure(t *testing.T) {
	sun := Sun3_280()
	vax := VAX8600()
	m88 := M88100()
	// The Table I story: coprocessor FP loads dwarf integer work on the
	// Sun; the VAX's operand fetch is nearly free relative to its FP
	// execution; the 88100 is cheap across the board.
	if sun.FLoad <= 5*sun.IntOp {
		t.Errorf("Sun FLoad (%d) should dwarf IntOp (%d)", sun.FLoad, sun.IntOp)
	}
	if vax.FLoad >= vax.FpAdd {
		t.Errorf("VAX FLoad (%d) should be small relative to FpAdd (%d)", vax.FLoad, vax.FpAdd)
	}
	if m88.FpMul >= sun.FpMul/4 {
		t.Errorf("88100 FpMul (%d) should be far below Sun's (%d)", m88.FpMul, sun.FpMul)
	}
}

func TestM68KListing(t *testing.T) {
	p, err := rtl.Parse(`
.func kernel
r10 := 2
r11 := _x
f0 := 1.5f
L2:
l64f f0, r11
f2 := f0
f3 := (f3 - f2)
f0 := f3
s64f f0, (r11 + 8)
r11 := (r11 + 8)
r10 := (r10 + 1)
r31 := (r10 < r12)
jumpTr L2
ret
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	out := M68KListing(p.Func("kernel"))
	for _, want := range []string{"moveq", "lea", "fmoved", "fsubx", "cmpl", "jne", "rts", "@+"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// The auto-increment pointer's bump must have vanished into @+.
	if strings.Contains(out, "addl\t#8") {
		t.Errorf("pointer bump not absorbed into auto-increment:\n%s", out)
	}
}
