package opt

import (
	"fmt"

	"wmstream/internal/rtl"
)

// Legalize enforces the WM instruction format on every RTL: at most two
// operations per instruction, symbols and non-zero float immediates
// only as a whole right-hand side (they are multi-word
// materializations), conversions standing alone, and no memory
// operands.  Oversized expressions are split through fresh virtual
// registers; Legalize therefore runs before register assignment.
func Legalize(f *rtl.Func) error {
	for n := 0; n < len(f.Code); n++ {
		i := f.Code[n]
		var err error
		split := func(e rtl.Expr) rtl.Expr {
			if err != nil {
				return e
			}
			var out rtl.Expr
			out, err = legalizeExpr(f, &n, e, true)
			return out
		}
		switch i.Kind {
		case rtl.KAssign:
			i.Src = split(i.Src)
		case rtl.KLoad, rtl.KStore:
			i.Addr = split(i.Addr)
		case rtl.KStreamIn, rtl.KStreamOut:
			i.Base = split(i.Base)
			i.Count = split(i.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// legalizeExpr rewrites e to a legal operand expression, inserting
// materializing instructions before position *n (and advancing it).
// top indicates e is the whole operand of its instruction.
func legalizeExpr(f *rtl.Func, n *int, e rtl.Expr, top bool) (rtl.Expr, error) {
	emit := func(c rtl.Class, src rtl.Expr) rtl.Expr {
		t := f.NewVirt(c)
		f.Insert(*n, rtl.NewAssign(t, src))
		*n++
		return rtl.RX(t)
	}
	switch x := e.(type) {
	case rtl.Mem:
		return nil, fmt.Errorf("legalize: memory operand %s not supported by WM", x)
	case rtl.Sym:
		if top {
			return e, nil
		}
		return emit(rtl.Int, x), nil
	case rtl.FImm:
		if top || x.V == 0 {
			if x.V == 0 && !top {
				return rtl.RX(rtl.F31), nil
			}
			return e, nil
		}
		return emit(rtl.Float, x), nil
	case rtl.Cvt:
		inner, err := legalizeExpr(f, n, x.X, false)
		if err != nil {
			return nil, err
		}
		// A conversion must stand alone; materialize its operand when
		// it is not a bare register.
		if _, ok := inner.(rtl.RegX); !ok {
			inner = emit(x.X.Class(), inner)
		}
		out := rtl.Cvt{To: x.To, X: inner}
		if top {
			return out, nil
		}
		return emit(x.To, out), nil
	case rtl.Un:
		inner, err := legalizeExpr(f, n, x.X, false)
		if err != nil {
			return nil, err
		}
		// Unary math ops count as one operation; their operand may be a
		// register or a single Bin (two ops total)... keep them simple:
		// operand must be a register or immediate.
		switch inner.(type) {
		case rtl.RegX, rtl.Imm:
		default:
			inner = emit(x.X.Class(), inner)
		}
		out := rtl.Un{Op: x.Op, X: inner}
		if top {
			return out, nil
		}
		return emit(e.Class(), out), nil
	case rtl.Bin:
		l, err := legalizeExpr(f, n, x.L, false)
		if err != nil {
			return nil, err
		}
		r, err := legalizeExpr(f, n, x.R, false)
		if err != nil {
			return nil, err
		}
		out := rtl.Bin{Op: x.Op, L: l, R: r}
		for rtl.ExprSize(out) > 2 || regCount(out) > 3 {
			// Split the deeper side into a temporary.
			lb, lOk := out.L.(rtl.Bin)
			rb, rOk := out.R.(rtl.Bin)
			switch {
			case lOk && rOk:
				if rtl.ExprSize(lb) >= rtl.ExprSize(rb) {
					out.L = emit(lb.Class(), lb)
				} else {
					out.R = emit(rb.Class(), rb)
				}
			case lOk:
				out.L = emit(lb.Class(), lb)
			case rOk:
				out.R = emit(rb.Class(), rb)
			default:
				// Un nested inside Bin, or too many registers: extract
				// whichever side is not a leaf.
				if _, isLeaf := out.L.(rtl.RegX); !isLeaf {
					if _, isImm := out.L.(rtl.Imm); !isImm {
						out.L = emit(out.L.Class(), out.L)
						continue
					}
				}
				if _, isLeaf := out.R.(rtl.RegX); !isLeaf {
					if _, isImm := out.R.(rtl.Imm); !isImm {
						out.R = emit(out.R.Class(), out.R)
						continue
					}
				}
				return nil, fmt.Errorf("legalize: cannot reduce %s", out)
			}
		}
		if top {
			return out, nil
		}
		return out, nil
	default:
		return e, nil
	}
}

func regCount(e rtl.Expr) int {
	n := 0
	rtl.ExprRegs(e, func(rtl.Reg) { n++ })
	return n
}
