package opt

import (
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// TestStreamRuntimeStride: a store loop stepping by a register (the
// sieve's marking-loop shape) must stream with the stride taken from
// the step register.
func TestStreamRuntimeStride(t *testing.T) {
	f := parseFunc(t, `
rv0 := (rv9 + rv9)
rv1 := _flags
LP:
L1:
r0 := 0
s8r r0, (rv0 + rv1)
rv0 := (rv0 + rv9)
r31 := (rv0 < rv8)
jumpTr L1
halt`)
	if !chk(Streams(f, 4)) {
		t.Fatalf("runtime-stride loop not streamed:\n%s", listing(f))
	}
	if countKind(f, rtl.KStreamOut) != 1 || countKind(f, rtl.KStore) != 0 {
		t.Fatalf("stream-out missing:\n%s", listing(f))
	}
	text := listing(f)
	if !strings.Contains(text, "sout8r") {
		t.Errorf("no byte stream-out:\n%s", text)
	}
	// The stride operand must be the step register, not a constant.
	for _, i := range f.Code {
		if i.Kind == rtl.KStreamOut {
			if _, isImm := i.Stride.(rtl.Imm); isImm {
				t.Errorf("stride is constant %s, want register:\n%s", i.Stride, text)
			}
		}
	}
}
