package opt

import (
	"strings"
	"testing"
	"time"

	"wmstream/internal/diag"
	"wmstream/internal/rtl"
)

// mutableFunc returns a function with enough body that corruption and
// rollback are observable.
func mutableFunc() *rtl.Func {
	f := rtl.NewFunc("t")
	f.Append(rtl.NewLabel("L1"))
	f.Append(&rtl.Instr{Kind: rtl.KRet})
	return f
}

// sandboxCtx builds a context the way Pipeline.Run's fork does for a
// function named "t": sandbox on (the default), provenance set.
func sandboxCtx() *Context {
	ctx := NewContext(Options{})
	ctx.Func = "t"
	return ctx
}

func wantDegraded(t *testing.T, ctx *Context, pass, reason string) diag.Diagnostic {
	t.Helper()
	for _, d := range ctx.Diags() {
		if d.Pass != pass {
			continue
		}
		if d.Sev != diag.Degraded {
			t.Errorf("diagnostic for %s has severity %v, want Degraded", pass, d.Sev)
		}
		if d.Func != "t" {
			t.Errorf("diagnostic for %s names function %q, want %q", pass, d.Func, "t")
		}
		if !strings.Contains(d.Msg, reason) {
			t.Errorf("diagnostic %q does not mention %q", d.Msg, reason)
		}
		return d
	}
	t.Fatalf("no diagnostic for pass %s (have %v)", pass, ctx.Diags())
	return diag.Diagnostic{}
}

func TestSandboxContainsPanic(t *testing.T) {
	f := mutableFunc()
	want := f.Listing()
	calls := 0
	boom := NewPass("boom", func(f *rtl.Func, _ *Context) (bool, error) {
		calls++
		f.Append(&rtl.Instr{Kind: rtl.KRet}) // partial mutation before the crash
		panic("boom goes the pass")
	})
	// The pass appears twice: the second step must be skipped once the
	// first invocation degraded it.
	pl := Pipeline{Name: "test", Steps: []Step{{Pass: boom}, {Pass: boom}}}
	ctx := sandboxCtx()
	if err := pl.RunFunc(f, ctx); err != nil {
		t.Fatalf("sandboxed panic escaped as error: %v", err)
	}
	if got := f.Listing(); got != want {
		t.Errorf("function not rolled back:\n%s\nwant:\n%s", got, want)
	}
	if calls != 1 {
		t.Errorf("degraded pass ran %d times, want 1 (disabled after first failure)", calls)
	}
	wantDegraded(t, ctx, "boom", "panicked")
}

func TestSandboxRollsBackInvariantViolation(t *testing.T) {
	f := mutableFunc()
	want := f.Listing()
	corrupt := NewPass("corrupt", func(f *rtl.Func, _ *Context) (bool, error) {
		f.Append(&rtl.Instr{Kind: rtl.KJump, Target: "Lnowhere"})
		return true, nil
	})
	ctx := sandboxCtx()
	if err := (Pipeline{Name: "test", Steps: []Step{{Pass: corrupt}}}).RunFunc(f, ctx); err != nil {
		t.Fatalf("contained corruption escaped as error: %v", err)
	}
	if got := f.Listing(); got != want {
		t.Errorf("function not rolled back:\n%s\nwant:\n%s", got, want)
	}
	wantDegraded(t, ctx, "corrupt", "invariant")
}

func TestSandboxReturnsErrorAsDegradation(t *testing.T) {
	f := mutableFunc()
	failing := NewPass("failing", func(f *rtl.Func, _ *Context) (bool, error) {
		return false, errTest
	})
	ctx := sandboxCtx()
	if err := (Pipeline{Name: "test", Steps: []Step{{Pass: failing}}}).RunFunc(f, ctx); err != nil {
		t.Fatalf("sandboxed error escaped: %v", err)
	}
	wantDegraded(t, ctx, "failing", "failed")
}

func TestSandboxBudgetOverrun(t *testing.T) {
	f := mutableFunc()
	want := f.Listing()
	slow := NewPass("slow", func(f *rtl.Func, _ *Context) (bool, error) {
		f.Append(&rtl.Instr{Kind: rtl.KRet})
		time.Sleep(30 * time.Millisecond)
		return true, nil
	})
	ctx := sandboxCtx()
	ctx.PassBudget = time.Millisecond
	if err := (Pipeline{Name: "test", Steps: []Step{{Pass: slow}}}).RunFunc(f, ctx); err != nil {
		t.Fatalf("budget overrun escaped as error: %v", err)
	}
	if got := f.Listing(); got != want {
		t.Errorf("function not rolled back after overrun:\n%s\nwant:\n%s", got, want)
	}
	wantDegraded(t, ctx, "slow", "budget")
}

func TestSandboxFixpointNonConvergence(t *testing.T) {
	f := mutableFunc()
	want := f.Listing()
	churn := NewPass("churn", func(f *rtl.Func, _ *Context) (bool, error) {
		f.Append(&rtl.Instr{Kind: rtl.KRet})
		return true, nil // never settles
	})
	pl := Pipeline{Name: "test", Steps: []Step{{Name: "g", Fixpoint: []Pass{churn}, MaxRounds: 3}}}
	ctx := sandboxCtx()
	if err := pl.RunFunc(f, ctx); err != nil {
		t.Fatalf("non-convergence escaped as error: %v", err)
	}
	if got := f.Listing(); got != want {
		t.Errorf("fixpoint group not rolled back:\n%s\nwant:\n%s", got, want)
	}
	wantDegraded(t, ctx, "[g]", "converge")
}

func TestSandboxRequiredPassStaysHardError(t *testing.T) {
	f := mutableFunc()
	fatal := NewPass("RegAlloc", func(f *rtl.Func, _ *Context) (bool, error) {
		return false, errTest
	})
	ctx := sandboxCtx()
	err := (Pipeline{Name: "test", Steps: []Step{{Pass: fatal}}}).RunFunc(f, ctx)
	if err == nil {
		t.Fatal("required-pass failure was swallowed by the sandbox")
	}
	if len(ctx.Diags()) != 0 {
		t.Errorf("required-pass failure also degraded: %v", ctx.Diags())
	}
}

func TestSandboxOffPropagatesPanic(t *testing.T) {
	f := mutableFunc()
	boom := NewPass("boom", func(f *rtl.Func, _ *Context) (bool, error) {
		panic("unsandboxed")
	})
	ctx := sandboxCtx()
	ctx.Sandbox = false
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate with the sandbox off")
		}
	}()
	_ = (Pipeline{Name: "test", Steps: []Step{{Pass: boom}}}).RunFunc(f, ctx)
}
