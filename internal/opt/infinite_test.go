package opt

import (
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// TestStreamInfiniteReadLoop: a search loop whose trip count is the
// data's (unknowable) content takes the infinite-stream branch: sin
// with count -1, original test kept, sstop at the exit.
func TestStreamInfiniteReadLoop(t *testing.T) {
	f := parseFunc(t, `
rv0 := 0
rv1 := _buf
LP:
L1:
l8r r0, (rv0 + rv1)
rv2 := r0
rv0 := (rv0 + 1)
r31 := (rv2 != 0)
jumpTr L1
L9:
halt`)
	if !chk(Streams(f, 4)) {
		t.Fatalf("infinite loop not streamed:\n%s", listing(f))
	}
	text := listing(f)
	if !strings.Contains(text, "sin8r") || !strings.Contains(text, "-1, 1") {
		t.Errorf("no infinite stream:\n%s", text)
	}
	if countKind(f, rtl.KStreamStop) == 0 {
		t.Errorf("no stream stop at exit:\n%s", text)
	}
	if countKind(f, rtl.KLoad) != 0 {
		t.Errorf("scalar load survived:\n%s", text)
	}
	// The loop test must remain (no jnd).
	if countKind(f, rtl.KCondJump) != 1 || countKind(f, rtl.KJumpNotDone) != 0 {
		t.Errorf("loop test mishandled:\n%s", text)
	}
}

// TestStreamInfiniteRefusesWrites: writes never stream on the infinite
// path — stopping an infinite output stream could lose in-flight data.
func TestStreamInfiniteRefusesWrites(t *testing.T) {
	f := parseFunc(t, `
rv0 := 0
rv1 := _buf
LP:
L1:
r0 := 7
s8r r0, (rv0 + rv1)
rv0 := (rv0 + 1)
l8r r0, (rv0 + rv1)
rv2 := r0
r31 := (rv2 != 0)
jumpTr L1
L9:
halt`)
	chk(Streams(f, 4))
	if countKind(f, rtl.KStreamOut) != 0 {
		t.Errorf("infinite output stream generated:\n%s", listing(f))
	}
}

// TestStreamPostIncrementRef: a reference textually after the
// induction-variable increment streams with its base shifted by one
// stride.
func TestStreamPostIncrementRef(t *testing.T) {
	f := parseFunc(t, `
rv0 := 0
rv1 := _x
rv2 := _y
LP:
L1:
l64f f0, ((rv0 << 3) + rv1)
fv0 := f0
f0 := fv0
s64f f0, ((rv0 << 3) + rv2)
rv0 := (rv0 + 1)
r31 := (rv0 < 100)
jumpTr L1
halt`)
	// Move nothing: both refs are pre-increment here; craft a
	// post-increment load instead.
	f2 := parseFunc(t, `
rv0 := 0
rv1 := _x
fv9 := 0f
LP:
L1:
rv0 := (rv0 + 1)
l64f f0, ((rv0 << 3) + rv1)
fv0 := f0
fv9 := (fv9 + fv0)
r31 := (rv0 < 100)
jumpTr L1
halt`)
	if !chk(Streams(f, 4)) {
		t.Fatalf("baseline loop did not stream:\n%s", listing(f))
	}
	if !chk(Streams(f2, 4)) {
		t.Fatalf("post-increment loop did not stream:\n%s", listing(f2))
	}
	// The post-increment stream's base must include the +stride shift:
	// base = (0<<3) + _x + 8.
	found := false
	for _, i := range f2.Code {
		if i.Kind == rtl.KAssign && i.Note == "stream base" {
			if strings.Contains(i.Src.String(), "8") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("post-increment base not shifted:\n%s", listing(f2))
	}
}
