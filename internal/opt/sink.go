package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// SinkCopies rewrites the expander's assignment pattern
//
//	t := expr        =>    r := expr
//	r := t                 (uses of t become r)
//
// computing the expression directly into its destination.  This is what
// turns the naive "t := k + i; k := t" of a source-level assignment into
// the canonical induction-variable increment "k := k + i" that the
// recurrence, streaming and trip-count analyses recognize.
//
// Legality (block-local, conservative):
//
//   - t is a single-definition virtual register defined in the same
//     block before the copy;
//   - nothing between the definition and the copy reads or writes
//     either t or r (the definition's own operands may read r);
//   - every other use of t sits after the copy in the same block,
//     before any redefinition of r, and t is dead at the block's end.
func SinkCopies(f *rtl.Func) (bool, error) {
	changed := false
	for round := 0; round < 256; round++ {
		more, err := sinkOnce(f)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func sinkOnce(f *rtl.Func) (bool, error) {
	defCount := map[rtl.Reg]int{}
	useIdx := map[rtl.Reg][]int{}
	for n, i := range f.Code {
		if d, ok := i.Def(); ok {
			defCount[d]++
		}
		for _, u := range i.Uses(nil) {
			useIdx[u] = append(useIdx[u], n)
		}
	}
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Liveness()
	for c := 0; c < len(f.Code); c++ {
		copyI := f.Code[c]
		if copyI.Kind != rtl.KAssign {
			continue
		}
		tx, isReg := copyI.Src.(rtl.RegX)
		if !isReg {
			continue
		}
		t, r := tx.Reg, copyI.Dst
		if !t.IsVirtual() || defCount[t] != 1 || t == r {
			continue
		}
		if r.IsZero() || r.IsFIFO() || t.IsFIFO() {
			continue
		}
		b := g.BlockOf(c)
		if b == nil {
			continue
		}
		// Find t's definition within the block, before the copy.
		d := -1
		for n := b.Start; n < c; n++ {
			if def, ok := f.Code[n].Def(); ok && def == t {
				d = n
			}
		}
		if d == -1 || f.Code[d].Kind != rtl.KAssign {
			continue
		}
		// Between definition and copy: no access to t or r.
		clean := true
		for n := d + 1; n < c; n++ {
			mid := f.Code[n]
			if def, ok := mid.Def(); ok && (def == t || def == r) {
				clean = false
				break
			}
			if mid.Kind == rtl.KCall && (!t.IsVirtual() || !r.IsVirtual()) {
				clean = false
				break
			}
			for _, u := range mid.Uses(nil) {
				if u == t || u == r {
					clean = false
				}
			}
			if !clean {
				break
			}
		}
		if !clean {
			continue
		}
		// All other uses of t must be in (c, b.End), with r stable.
		ok := true
		var rewrites []int
		for _, u := range useIdx[t] {
			if u == c {
				continue
			}
			if u <= c || u >= b.End {
				ok = false
				break
			}
			rewrites = append(rewrites, u)
		}
		if !ok {
			continue
		}
		// t dead at block end; r not redefined before the last use of t.
		if b.LiveOut.Has(t) {
			continue
		}
		last := c
		for _, u := range rewrites {
			if u > last {
				last = u
			}
		}
		for n := c + 1; n <= last && ok; n++ {
			if def, okd := f.Code[n].Def(); okd && def == r {
				isUse := false
				for _, u := range rewrites {
					if u == n {
						isUse = true
					}
				}
				// A rewrite site may also redefine r only if it is the
				// last one.
				if !isUse || n != last {
					ok = false
				}
			}
			if f.Code[n].Kind == rtl.KCall && !r.IsVirtual() {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// Apply: compute into r, drop the copy, rename trailing uses.
		f.Code[d].Dst = r
		for _, u := range rewrites {
			f.Code[u].MapExprs(func(e rtl.Expr) rtl.Expr {
				return rtl.SubstReg(e, t, rtl.RX(r))
			})
		}
		f.Remove(c)
		return true, nil
	}
	return false, nil
}
