package opt

import (
	"context"
	"io"
	"time"

	"wmstream/internal/diag"
	"wmstream/internal/rtl"
)

// Pass is one optimizer transformation reified as data.  Every
// transformation in this package is wrapped as a Pass so pipelines can
// describe ordering, fixpoint iteration and conditional reruns
// declaratively (pipeline.go) instead of hard-coding one phase order —
// the property the paper credits vpo for ("phases can be re-invoked in
// any order").
type Pass interface {
	// Name identifies the pass in listings, statistics and errors.
	Name() string
	// Run applies the transformation to one function.  It reports
	// whether the code changed; an error means the function could not
	// be compiled (e.g. register allocation ran out of registers).
	Run(f *rtl.Func, ctx *Context) (changed bool, err error)
}

// Context carries per-run configuration into passes and accumulates
// per-pass statistics while a pipeline runs.  A Context must not be
// shared between concurrently optimized functions; the parallel engine
// forks one child Context per function and merges the statistics
// deterministically afterwards (pipeline.go).
type Context struct {
	// Opts parameterizes passes (MinTrip, MaxRecurrenceDegree, ...).
	Opts Options
	// Func is the name of the function being optimized (diagnostics).
	Func string
	// Debug, when non-nil, receives vpo-style per-pass RTL dumps: the
	// listing of every function before optimization and after each
	// pass invocation that changed the code.  Setting Debug forces the
	// engine to run functions sequentially so dumps do not interleave.
	Debug io.Writer
	// Verify runs the RTL invariant checker (verify.go) after every
	// pass invocation, so a pass that corrupts the IR is caught at the
	// pass boundary instead of in the simulator.
	Verify bool
	// Workers bounds the per-function worker pool of Pipeline.Run.
	// Zero means GOMAXPROCS.
	Workers int
	// Sandbox contains pass faults (sandbox.go): each non-required pass
	// runs against a snapshot of the function, and a panic, invariant
	// violation, budget overrun or fixpoint non-convergence rolls the
	// function back, records a Degraded diagnostic and disables the
	// pass for that function instead of failing the compilation.
	Sandbox bool
	// PassBudget is the wall-clock budget for one pass invocation under
	// the sandbox.  Zero means DefaultPassBudget.
	PassBudget time.Duration
	// Ctx, when non-nil, cancels the compilation cooperatively: the
	// pipeline engine checks it between passes (and between fixpoint
	// rounds) and aborts with the context's error.  Used by the serving
	// layer to enforce per-request deadlines.
	Ctx context.Context

	// allocated is set once register assignment has run; from then on
	// the invariant checker rejects virtual registers.
	allocated bool

	// diags collects degradation events (and other structured
	// diagnostics) for this context; children are merged back into the
	// parent in function order by Pipeline.Run.
	diags []diag.Diagnostic
	// disabled marks passes (or bracketed fixpoint groups) the sandbox
	// switched off for the current function.
	disabled map[string]bool

	stats *Stats
}

// NewContext returns a Context with the option defaults applied
// (MinTrip 4, MaxRecurrenceDegree 4, matching the paper's choices).
// Fault containment (Sandbox) is on by default: a faulty optimization
// degrades the function instead of failing the compilation.
func NewContext(opts Options) *Context {
	return &Context{Opts: opts.withDefaults(), Sandbox: true, stats: NewStats()}
}

// Stats returns the statistics accumulated so far.
func (c *Context) Stats() *Stats { return c.stats }

// Diags returns the structured diagnostics collected so far (pass
// degradation events recorded by the sandbox).
func (c *Context) Diags() []diag.Diagnostic {
	return append([]diag.Diagnostic(nil), c.diags...)
}

// fork returns a child context for optimizing one function.  The child
// gets its own Stats, diagnostics and disabled-pass set so concurrent
// functions never share mutable state; Run merges children back in
// function order.
func (c *Context) fork(fn string) *Context {
	child := *c
	child.Func = fn
	child.stats = NewStats()
	child.diags = nil
	child.disabled = nil
	return &child
}

// canceled reports the context's error once the compilation's deadline
// has passed or it has been canceled (nil otherwise, including when no
// context is attached).
func (c *Context) canceled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// withDefaults fills in the paper's default parameters.
func (o Options) withDefaults() Options {
	if o.MinTrip == 0 {
		o.MinTrip = 4
	}
	if o.MaxRecurrenceDegree == 0 {
		o.MaxRecurrenceDegree = 4
	}
	return o
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	run  func(f *rtl.Func, ctx *Context) (bool, error)
}

func (p passFunc) Name() string { return p.name }
func (p passFunc) Run(f *rtl.Func, ctx *Context) (bool, error) {
	return p.run(f, ctx)
}

// NewPass wraps run as a named Pass.
func NewPass(name string, run func(f *rtl.Func, ctx *Context) (bool, error)) Pass {
	return passFunc{name, run}
}

// boolPass wraps the common transformation shape func(*rtl.Func) bool.
func boolPass(name string, run func(*rtl.Func) bool) Pass {
	return passFunc{name, func(f *rtl.Func, _ *Context) (bool, error) {
		return run(f), nil
	}}
}

// errPass wraps the transformation shape func(*rtl.Func) (bool, error)
// — passes whose control-flow analysis can reject the input (a branch
// to an unknown label in hand-written assembly).
func errPass(name string, run func(*rtl.Func) (bool, error)) Pass {
	return passFunc{name, func(f *rtl.Func, _ *Context) (bool, error) {
		return run(f)
	}}
}

// The full pass registry.  Each existing transformation keeps its
// plain-function form (Fold, CSE, ...); these wrappers are the data
// the pipeline layer composes.
var (
	PassFold             = boolPass("Fold", Fold)
	PassCopyProp         = errPass("CopyProp", CopyProp)
	PassSinkCopies       = errPass("SinkCopies", SinkCopies)
	PassCSE              = errPass("CSE", CSE)
	PassDeadCode         = errPass("DeadCode", DeadCode)
	PassCleanBranches    = boolPass("CleanBranches", CleanBranches)
	PassLICM             = errPass("LICM", LICM)
	PassCombine          = errPass("Combine", Combine)
	PassDeadIVs          = errPass("DeadIVs", DeadIVs)
	PassScheduleLoopTest = errPass("ScheduleLoopTest", ScheduleLoopTest)

	// PassRecurrences reads MaxRecurrenceDegree from the Context (the
	// paper: a recurrence of degree d consumes d+1 registers).
	PassRecurrences = NewPass("Recurrences", func(f *rtl.Func, ctx *Context) (bool, error) {
		return Recurrences(f, ctx.Opts.MaxRecurrenceDegree)
	})
	// PassStreams reads MinTrip from the Context (paper step 1: "three
	// or fewer, do not use streams").
	PassStreams = NewPass("Streams", func(f *rtl.Func, ctx *Context) (bool, error) {
		return Streams(f, ctx.Opts.MinTrip)
	})
	// PassStrengthReduce uses the WM predicate: only addresses the
	// dual-operation instruction format cannot absorb are rewritten.
	PassStrengthReduce = errPass("StrengthReduce", StrengthReduce)
	// PassStrengthReduceAll uses the conventional-machine predicate:
	// every induction-variable address benefits from a derived pointer
	// (auto-increment addressing, Figure 6).
	PassStrengthReduceAll = NewPass("StrengthReduceAll", func(f *rtl.Func, _ *Context) (bool, error) {
		return StrengthReduceWith(f, AllIVAddrs)
	})

	PassLegalize = NewPass("Legalize", func(f *rtl.Func, _ *Context) (bool, error) {
		return false, Legalize(f)
	})
	// PassRegAlloc flips the Context into "allocated" mode so the
	// invariant checker starts rejecting virtual registers.
	PassRegAlloc = NewPass("RegAlloc", func(f *rtl.Func, ctx *Context) (bool, error) {
		if err := RegAlloc(f); err != nil {
			return false, err
		}
		ctx.allocated = true
		return true, nil
	})
	PassRenumber = NewPass("Renumber", func(f *rtl.Func, _ *Context) (bool, error) {
		f.Renumber()
		return false, nil
	})
)

// StandardPasses returns the classic scalar optimizations in their
// canonical fixpoint order.  The permutation tests in internal/bench
// exercise the paper's "any order" property by shuffling this slice.
func StandardPasses() []Pass {
	return []Pass{PassFold, PassCopyProp, PassSinkCopies, PassCSE, PassDeadCode, PassCleanBranches}
}

// AllPasses returns every registered pass (for tooling and tests).
func AllPasses() []Pass {
	return []Pass{
		PassFold, PassCopyProp, PassSinkCopies, PassCSE, PassDeadCode,
		PassCleanBranches, PassLICM, PassRecurrences, PassStreams,
		PassCombine, PassStrengthReduce, PassStrengthReduceAll,
		PassDeadIVs, PassScheduleLoopTest, PassLegalize, PassRegAlloc,
		PassRenumber,
	}
}
