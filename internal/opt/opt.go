// Package opt is the RTL optimizer — the reproduction of the paper's
// vpo-based machine-level optimizer.  All transformations run on RTLs
// (package rtl) using the analyses of package cfg, are machine
// independent in form, and can be re-invoked in any order, which is the
// property the paper credits for making the recurrence and streaming
// algorithms simple to compose with the rest of the optimizer.
//
// The two headline passes reproduce the paper's algorithms directly:
//
//   - Recurrence detection and optimization (recurrence.go) — builds
//     memory-reference partitions, finds read/write pairs whose read
//     fetches a value written on a previous iteration, and carries the
//     value in registers instead, eliminating one memory reference per
//     recurrence per iteration (Figures 4 -> 5, Table I).
//   - Streaming (stream.go) — proves references are executed every
//     iteration with fixed stride and a computable trip count, then
//     replaces them with stream-in/stream-out instructions executed by
//     the stream control units, replaces the loop test with a
//     jump-on-stream-not-exhausted, and lets dead-code elimination
//     remove the induction variable (Figure 5 -> 7, Table II).
package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// Options selects which transformations run.  The zero value performs
// register assignment only (the "naive" baseline).
type Options struct {
	// Standard enables the classic scalar optimizations: constant
	// folding, copy propagation, common-subexpression elimination,
	// dead-code elimination, loop-invariant code motion and branch
	// cleanup.
	Standard bool
	// Recurrence enables the paper's recurrence detection and
	// optimization algorithm.
	Recurrence bool
	// Stream enables the paper's streaming algorithm.  It requires
	// Recurrence analysis machinery but can run with recurrence
	// *optimization* disabled, in which case loops whose recurrences
	// were not eliminated simply refuse to stream (paper step 2a).
	Stream bool
	// StrengthReduce enables induction-variable strength reduction of
	// addressing code (paper streaming step 3, and the auto-increment
	// shape of Figure 6 on conventional machines).
	StrengthReduce bool
	// Combine enables instruction combining into WM's dual-operation
	// form and FIFO-read forwarding.
	Combine bool
	// MinTrip is the smallest statically-known trip count worth
	// streaming (paper step 1 uses 4: "three or fewer, do not use
	// streams").
	MinTrip int64
	// MaxRecurrenceDegree bounds how many registers a recurrence may
	// consume (paper: degree+1 registers).
	MaxRecurrenceDegree int64
}

// Level returns the canonical option sets: 0 none, 1 standard, 2
// +recurrence, 3 +streaming (the full paper pipeline).
func Level(n int) Options {
	o := Options{MinTrip: 4, MaxRecurrenceDegree: 4}
	if n >= 1 {
		o.Standard = true
		o.StrengthReduce = true
		o.Combine = true
	}
	if n >= 2 {
		o.Recurrence = true
	}
	if n >= 3 {
		o.Stream = true
	}
	return o
}

// Optimize runs the canonical WM pipeline over every function and then
// performs register assignment (always required: the expander emits
// virtual registers).  It is a thin wrapper over the pass-manager
// engine (pipeline.go): functions are optimized concurrently, and
// callers that want per-pass statistics, debug dumps, invariant
// checking or a custom pass order use WMPipeline/Pipeline.Run with
// their own Context.
func Optimize(p *rtl.Program, opts Options) error {
	ctx := NewContext(opts)
	return WMPipeline(ctx.Opts).Run(p, ctx)
}

// OptimizeScalar runs the compiler pipeline for a conventional target
// machine (the Table I experiments); see ScalarPipeline for the pass
// order and rationale.
func OptimizeScalar(p *rtl.Program, recurrence bool) error {
	ctx := NewContext(Options{Standard: true, Recurrence: recurrence, StrengthReduce: true})
	return ScalarPipeline(recurrence).Run(p, ctx)
}

// standardFixpoint iterates the cheap scalar optimizations until
// nothing changes (bounded, they converge fast).  It is the plain-
// function form of the "[standard]" fixpoint group of the pipelines.
func standardFixpoint(f *rtl.Func) error {
	for round := 0; round < 20; round++ {
		changed := Fold(f)
		for _, pass := range []func(*rtl.Func) (bool, error){CopyProp, SinkCopies, CSE, DeadCode} {
			c, err := pass(f)
			if err != nil {
				return err
			}
			changed = c || changed
		}
		changed = CleanBranches(f) || changed
		if !changed {
			return nil
		}
	}
	return nil
}

// Fold applies constant folding and algebraic simplification to every
// instruction.  A compare keeps its top-level relational operator (the
// condition-code enqueue is a side effect folding must not erase);
// constant compares are resolved together with their branch instead.
// It reports whether anything changed.
func Fold(f *rtl.Func) bool {
	changed := false
	fold := func(e rtl.Expr) rtl.Expr {
		folded := rtl.FoldExpr(e)
		if !rtl.EqualExpr(folded, e) {
			changed = true
			return folded
		}
		return e
	}
	for _, i := range f.Code {
		if i.IsCompare() {
			b := i.Src.(rtl.Bin)
			i.Src = rtl.Bin{Op: b.Op, L: fold(b.L), R: fold(b.R)}
			continue
		}
		i.MapExprs(fold)
	}
	// A compare of two constants feeding a conditional jump becomes an
	// unconditional jump or disappears.
	for n := 0; n+1 < len(f.Code); n++ {
		cmp, jmp := f.Code[n], f.Code[n+1]
		if !cmp.IsCompare() || jmp.Kind != rtl.KCondJump {
			continue
		}
		b := cmp.Src.(rtl.Bin)
		l, lok := b.L.(rtl.Imm)
		r, rok := b.R.(rtl.Imm)
		if !lok || !rok {
			continue
		}
		v, ok := rtl.EvalIntOp(b.Op, l.V, r.V)
		if !ok {
			continue
		}
		taken := (v != 0) == jmp.Sense
		if taken {
			f.Code[n] = rtl.NewJump(jmp.Target)
			f.Remove(n + 1)
		} else {
			f.Remove(n + 1)
			f.Remove(n)
		}
		changed = true
	}
	return changed
}

// DeadCode removes assignments whose destination is dead and which have
// no side effects, using global liveness.
func DeadCode(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Liveness()
	dead := map[int]bool{}
	for _, b := range g.Blocks {
		g.LiveAtEach(b, func(idx int, i *rtl.Instr, after cfg.RegSet) {
			if i.Kind != rtl.KAssign || i.HasSideEffects() {
				return
			}
			if i.Dst.IsZero() {
				// A plain assignment to the zero register is a no-op.
				dead[idx] = true
				return
			}
			if !after.Has(i.Dst) {
				dead[idx] = true
			}
		})
	}
	if len(dead) == 0 {
		return false, nil
	}
	out := f.Code[:0]
	for n, i := range f.Code {
		if !dead[n] {
			out = append(out, i)
		}
	}
	f.Code = out
	return true, nil
}

// StandardFixpointForTest exposes the standard-optimization fixpoint
// for white-box tests and experiment debugging.
func StandardFixpointForTest(f *rtl.Func) error { return standardFixpoint(f) }

// AllIVAddrs is the scalar-machine strength-reduction predicate: every
// induction-variable address benefits from a derived pointer.
func AllIVAddrs(lin linform) bool { return lin.cee != 0 }
