package opt

import (
	"fmt"
	"time"

	"wmstream/internal/diag"
	"wmstream/internal/rtl"
)

// Pass sandboxing: the fault-containment layer of the optimizer.
//
// Every transformation in this package is optimization-only — skipping
// it must yield correct (if slower) code.  The sandbox exploits that:
// before a non-required pass runs, the function is snapshotted
// (rtl.Func.Clone); the pass then executes under recover().  A panic,
// a returned error, an IR invariant violation (rtl.CheckFunc) after a
// change, or a wall-clock budget overrun rolls the function back to
// the snapshot, records a Degraded diagnostic naming the pass and the
// function, and disables the pass for the rest of this function's
// pipeline.  The same containment applies to a fixpoint group that
// fails to converge within its round bound.  The result: a buggy O2/O3
// transform produces correct O1-quality code plus a diagnostic instead
// of killing the compilation.

// DefaultPassBudget is the wall-clock budget for a single pass
// invocation under the sandbox when Context.PassBudget is zero.  Real
// passes finish in microseconds; the generous default only catches
// runaway (livelocked) transformations.
const DefaultPassBudget = 10 * time.Second

// InjectFault is a test hook: when non-nil it is consulted before each
// sandboxed pass invocation and may return a fault to run in place of
// the pass — "panic" (the pass panics), "error" (it returns an error),
// "corrupt" (it damages the IR and reports a change), or "hang" (it
// sleeps past the budget).  An empty string runs the pass normally.
// Production builds leave this nil; fault-containment tests use it to
// prove that any of these failure modes degrades instead of breaking
// the compilation.
var InjectFault func(pass, fn string) string

func runInjectedFault(mode string, f *rtl.Func, budget time.Duration) (bool, error) {
	switch mode {
	case "panic":
		panic("injected fault")
	case "error":
		return false, fmt.Errorf("injected fault")
	case "corrupt":
		f.Code = append(f.Code, &rtl.Instr{Kind: rtl.KJump, Target: "L<injected-bogus-label>"})
		return true, nil
	case "hang":
		time.Sleep(budget + 50*time.Millisecond)
		return false, nil
	}
	return false, fmt.Errorf("unknown injected fault %q", mode)
}

// requiredPasses must run for the output to be executable at all
// (virtual registers eliminated, WM instruction shapes legal, code
// addresses renumbered).  Their failures stay hard errors: there is no
// correct fallback.
var requiredPasses = map[string]bool{
	"Legalize": true,
	"RegAlloc": true,
	"Renumber": true,
}

// degrade records a Degraded diagnostic for the named pass (or
// bracketed fixpoint group) and disables it for the current function.
func (c *Context) degrade(pass, reason string) {
	if c.disabled == nil {
		c.disabled = map[string]bool{}
	}
	c.disabled[pass] = true
	c.diags = append(c.diags, diag.Diagnostic{
		Sev:   diag.Degraded,
		Stage: "opt",
		Pass:  pass,
		Func:  c.Func,
		Msg:   reason,
	})
}

// runSandboxed executes one non-required pass invocation inside the
// containment envelope described above.  It never returns an error:
// every failure mode degrades instead.
func runSandboxed(p Pass, f *rtl.Func, ctx *Context) (changed bool, err error) {
	name := p.Name()
	if ctx.disabled[name] {
		return false, nil
	}
	snap := f.Clone()
	budget := ctx.PassBudget
	if budget <= 0 {
		budget = DefaultPassBudget
	}

	var panicked any
	start := time.Now()
	changed, err = func() (c bool, e error) {
		defer func() {
			if r := recover(); r != nil {
				panicked = r
			}
		}()
		if InjectFault != nil {
			if mode := InjectFault(name, ctx.Func); mode != "" {
				return runInjectedFault(mode, f, budget)
			}
		}
		return runInstrumented(p, f, ctx)
	}()
	elapsed := time.Since(start)

	reason := ""
	switch {
	case panicked != nil:
		reason = fmt.Sprintf("panicked: %v", panicked)
	case err != nil:
		reason = fmt.Sprintf("failed: %v", err)
	case elapsed > budget:
		reason = fmt.Sprintf("overran its budget (%v > %v)", elapsed, budget)
	case changed:
		// A pass that touched the code must leave the IR invariants
		// intact; ctx.Verify would also catch this, but the sandbox
		// checks unconditionally — containment must not depend on
		// debug settings.
		if cerr := rtl.CheckFunc(f, !ctx.allocated); cerr != nil {
			reason = fmt.Sprintf("violated an IR invariant: %v", cerr)
		}
	}
	if reason == "" {
		return changed, nil
	}
	f.Restore(snap)
	ctx.degrade(name, reason)
	return false, nil
}
