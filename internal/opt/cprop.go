package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// CopyProp performs copy and constant propagation: block-local with
// full kill tracking, plus a global pass for single-definition virtual
// registers (safe without dominance tests because a single-def register
// is only meaningfully read where its definition reaches).
func CopyProp(f *rtl.Func) (bool, error) {
	changed := globalSingleDefProp(f)
	local, err := localCopyProp(f)
	if err != nil {
		return changed, err
	}
	return changed || local, nil
}

// globalSingleDefProp replaces uses of single-def virtual registers
// whose definition is a small constant or another single-def virtual
// register.  Symbols and float immediates are deliberately not
// propagated into expressions: the target materializes them with
// multi-word sequences, so they must stay in registers (CSE and code
// motion take care of them instead).
func globalSingleDefProp(f *rtl.Func) bool {
	defCount := map[rtl.Reg]int{}
	defOf := map[rtl.Reg]*rtl.Instr{}
	for _, i := range f.Code {
		if d, ok := i.Def(); ok && d.IsVirtual() {
			defCount[d]++
			defOf[d] = i
		}
		if i.Kind == rtl.KCall {
			// Calls clobber physical registers only; virtuals are safe.
			continue
		}
	}
	repl := map[rtl.Reg]rtl.Expr{}
	for r, n := range defCount {
		if n != 1 {
			continue
		}
		def := defOf[r]
		if def.Kind != rtl.KAssign || def.HasSideEffects() {
			continue
		}
		switch src := def.Src.(type) {
		case rtl.Imm:
			repl[r] = src
		case rtl.RegX:
			if src.Reg.IsVirtual() && defCount[src.Reg] == 1 {
				repl[r] = src
			}
		}
	}
	if len(repl) == 0 {
		return false
	}
	// Resolve chains (v2 -> v1 -> const).
	resolve := func(e rtl.Expr) rtl.Expr {
		for k := 0; k < 8; k++ {
			rx, ok := e.(rtl.RegX)
			if !ok {
				return e
			}
			next, ok := repl[rx.Reg]
			if !ok {
				return e
			}
			e = next
		}
		return e
	}
	changed := false
	for _, i := range f.Code {
		i.MapExprs(func(e rtl.Expr) rtl.Expr {
			out := rtl.RenameRegsExpr(e, func(r rtl.Reg) rtl.Expr {
				if to, ok := repl[r]; ok {
					changed = true
					return resolve(to)
				}
				return rtl.RegX{Reg: r}
			})
			return out
		})
	}
	return changed
}

// localCopyProp propagates copies and constants within basic blocks
// with precise kill handling, covering multi-def registers (loop
// variables) and physical registers.
func localCopyProp(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	changed := false
	for _, b := range g.Blocks {
		// value[r] = expression currently equal to r (RegX or Imm).
		value := map[rtl.Reg]rtl.Expr{}
		kill := func(r rtl.Reg) {
			delete(value, r)
			for dst, src := range value {
				if rx, ok := src.(rtl.RegX); ok && rx.Reg == r {
					delete(value, dst)
				}
			}
		}
		for _, i := range b.Instrs(f) {
			// Rewrite uses.
			i.MapExprs(func(e rtl.Expr) rtl.Expr {
				return rtl.RenameRegsExpr(e, func(r rtl.Reg) rtl.Expr {
					if to, ok := value[r]; ok {
						changed = true
						return to
					}
					return rtl.RegX{Reg: r}
				})
			})
			// Update the environment.
			switch i.Kind {
			case rtl.KAssign:
				d := i.Dst
				if d.IsZero() || d.IsFIFO() {
					continue
				}
				kill(d)
				if i.HasFIFORead() {
					continue
				}
				switch src := i.Src.(type) {
				case rtl.Imm:
					value[d] = src
				case rtl.RegX:
					if !src.Reg.IsZero() && !src.Reg.IsFIFO() {
						value[d] = src
					}
				}
			case rtl.KCall:
				// Clobbers every physical register: drop entries whose
				// source or destination is physical.
				for dst, src := range value {
					phys := !dst.IsVirtual()
					if rx, ok := src.(rtl.RegX); ok && !rx.Reg.IsVirtual() {
						phys = true
					}
					if phys {
						delete(value, dst)
					}
				}
			}
		}
	}
	return changed, nil
}
