package opt

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PassStats aggregates the invocations of one pass (or one fixpoint
// group, whose entries are bracketed, e.g. "[standard]").
type PassStats struct {
	Name string
	// Calls counts invocations; Fires counts invocations that changed
	// the code.
	Calls int
	Fires int
	// Time is total wall time spent inside the pass.
	Time time.Duration
	// InstrDelta is the cumulative change in (non-label) instruction
	// count caused by the pass; negative means code was removed.
	InstrDelta int
	// Rounds is, for fixpoint groups, the total number of iteration
	// rounds run to reach the fixpoint; zero for plain passes.
	Rounds int
}

// Stats accumulates per-pass statistics for one pipeline run.  It is
// not safe for concurrent use: the parallel engine gives every
// function its own Stats and merges them in function order, so the
// aggregate is deterministic regardless of scheduling.
type Stats struct {
	order  []string
	byName map[string]*PassStats
	// Funcs counts functions optimized; Total is wall time across all
	// pass invocations (summed over workers, so it can exceed the
	// elapsed time of a parallel run).
	Funcs int
	Total time.Duration
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{byName: map[string]*PassStats{}}
}

func (s *Stats) get(name string) *PassStats {
	ps := s.byName[name]
	if ps == nil {
		ps = &PassStats{Name: name}
		s.byName[name] = ps
		s.order = append(s.order, name)
	}
	return ps
}

// record books one pass invocation.
func (s *Stats) record(name string, changed bool, dt time.Duration, delta int) {
	ps := s.get(name)
	ps.Calls++
	if changed {
		ps.Fires++
	}
	ps.Time += dt
	ps.InstrDelta += delta
	s.Total += dt
}

// recordGroup books one fixpoint-group execution.  Time and instruction
// deltas are attributed to the member passes, not the group, so Total
// does not double-count.
func (s *Stats) recordGroup(name string, changed bool, rounds int) {
	ps := s.get(name)
	ps.Calls++
	if changed {
		ps.Fires++
	}
	ps.Rounds += rounds
}

// Merge folds other into s, preserving s's first-seen ordering for
// passes already present and appending new ones in other's order.
func (s *Stats) Merge(other *Stats) {
	for _, name := range other.order {
		o := other.byName[name]
		ps := s.get(name)
		ps.Calls += o.Calls
		ps.Fires += o.Fires
		ps.Time += o.Time
		ps.InstrDelta += o.InstrDelta
		ps.Rounds += o.Rounds
	}
	s.Funcs += other.Funcs
	s.Total += other.Total
}

// Passes returns the per-pass records in first-invocation order.
func (s *Stats) Passes() []PassStats {
	out := make([]PassStats, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.byName[name])
	}
	return out
}

// Pass returns the record for one pass (zero value if it never ran).
func (s *Stats) Pass(name string) PassStats {
	if ps := s.byName[name]; ps != nil {
		return *ps
	}
	return PassStats{Name: name}
}

// Table renders the statistics as an aligned per-pass table, slowest
// pass first.
func (s *Stats) Table() string {
	passes := s.Passes()
	sort.SliceStable(passes, func(i, j int) bool { return passes[i].Time > passes[j].Time })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %7s %7s %8s %7s %12s\n", "pass", "calls", "fires", "Δinstr", "rounds", "time")
	for _, p := range passes {
		rounds := ""
		if p.Rounds > 0 {
			rounds = fmt.Sprint(p.Rounds)
		}
		fmt.Fprintf(&b, "%-20s %7d %7d %+8d %7s %12s\n",
			p.Name, p.Calls, p.Fires, p.InstrDelta, rounds, p.Time.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "%-20s %7s %7s %8s %7s %12s  (%d functions)\n",
		"total", "", "", "", "", s.Total.Round(time.Microsecond), s.Funcs)
	return b.String()
}
