package opt

import (
	"sort"

	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// Recurrences implements the paper's recurrence detection and
// optimization algorithm (its Figure 4 -> Figure 5 transformation):
//
//	Step 1   partition the loop's memory references by region;
//	Step 2   compute (iv, cee, dee) for each reference;
//	Step 3   safety: same iv, same cee, offsets on one lattice;
//	Step 4   for read/write pairs where the read fetches a value
//	         written on a previous iteration, carry the value in
//	         registers: retain the stored value, replace the loads
//	         with register references, emit shifting copies at the
//	         top of the loop and initial loads in the preheader.
//
// The number of registers used is degree+1, where the degree is the
// largest iteration distance.  It returns whether anything changed.
func Recurrences(f *rtl.Func, maxDegree int64) (bool, error) {
	changed := false
	for round := 0; round < 128; round++ {
		more, err := recurrenceOnce(f, maxDegree)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func recurrenceOnce(f *rtl.Func, maxDegree int64) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	for _, l := range g.NaturalLoops() {
		if pre := EnsurePreheader(f, g, l); pre < 0 {
			continue
		} else if l.Preheader == nil {
			// A preheader was inserted: restart with fresh analyses.
			return true, nil
		}
		ctx := analyzeLoop(f, g, l)
		if ctx.hasCall || ctx.stream {
			continue
		}
		refs, ok := ctx.collectRefs()
		if !ok {
			continue
		}
		for _, p := range buildPartitions(refs) {
			if transformRecurrence(ctx, p, maxDegree) {
				return true, nil
			}
		}
	}
	return false, nil
}

// recPair is one read that fetches a value written dist iterations ago.
type recPair struct {
	read *memRef
	dist int64
}

// transformRecurrence applies step 4 to one partition.  Returns whether
// the function was modified.
func transformRecurrence(ctx *loopCtx, p *partition, maxDegree int64) bool {
	if p.unsafe {
		return false
	}
	var write *memRef
	var reads []*memRef
	for _, r := range p.refs {
		if r.write {
			if write != nil {
				return false // multiple writes: too hard, leave alone
			}
			write = r
		} else {
			reads = append(reads, r)
		}
	}
	if write == nil || len(reads) == 0 || !write.every {
		return false
	}
	iv := write.lin.iv
	ivi, ok := ctx.ivs[iv]
	if !ok || ivi.regStep {
		return false // register steps: iteration distance is not static
	}
	strideIter := write.lin.cee * ivi.step
	if strideIter == 0 {
		return false
	}
	// Addresses read after the induction variable's increment would
	// shift the linear form by one step; require program order
	// ref-then-increment (the expander's rotated loops guarantee it).
	if !precedes(ctx, write.accIdx, ivi.defIdx) {
		return false
	}

	var pairs []recPair
	degree := int64(0)
	for _, r := range reads {
		if !r.every {
			return false // conservatively require uniform execution
		}
		if !precedes(ctx, r.accIdx, ivi.defIdx) {
			return false
		}
		delta := write.lin.off - r.lin.off
		if delta == 0 || delta%strideIter != 0 {
			continue
		}
		d := delta / strideIter
		if d < 1 {
			continue // reads ahead of the write: not a recurrence
		}
		if d > maxDegree {
			return false // not enough registers (paper step 4a remark)
		}
		if r.size != write.size || r.class != write.class {
			return false
		}
		pairs = append(pairs, recPair{r, d})
		if d > degree {
			degree = d
		}
	}
	if len(pairs) == 0 {
		return false
	}

	f := ctx.f
	class := write.class

	// Step 4b: retain the written value in a register.  The enqueue
	// instruction "fifo := expr" becomes "v := expr; fifo := v" unless
	// its source is already a plain register.
	enq := f.Code[write.dataIdx]
	recRegs := make([]rtl.Reg, degree+1)
	enqIdx := write.dataIdx
	inserted := 0
	if rx, isReg := enq.Src.(rtl.RegX); isReg && !rx.Reg.IsFIFO() && !rx.Reg.IsZero() {
		recRegs[0] = rx.Reg
	} else {
		v := f.NewVirt(class)
		val := rtl.NewAssign(v, enq.Src)
		val.Note = "recurrence value"
		enq.Src = rtl.RX(v)
		f.Insert(enqIdx, val)
		inserted = 1
		recRegs[0] = v
	}
	adj := func(idx int) int {
		if idx >= enqIdx {
			return idx + inserted
		}
		return idx
	}
	for k := int64(1); k <= degree; k++ {
		recRegs[k] = f.NewVirt(class)
	}

	// Step 4b continued: replace each recurrence read with a register
	// reference and delete its load.  Apply edits from the highest
	// index downward so positions stay valid.
	type edit struct {
		loadIdx, dataIdx int
		dist             int64
	}
	var edits []edit
	for _, pr := range pairs {
		edits = append(edits, edit{adj(pr.read.accIdx), adj(pr.read.dataIdx), pr.dist})
	}
	// Rewrite the dequeues first (no index shifts), then delete loads
	// from the highest index down.
	fifo := rtl.Reg{Class: class, N: rtl.FIFO0}
	for _, e := range edits {
		deq := f.Code[e.dataIdx]
		deq.MapExprs(func(x rtl.Expr) rtl.Expr {
			return rtl.SubstReg(x, fifo, rtl.RX(recRegs[e.dist]))
		})
		if deq.Note == "" {
			deq.Note = "recurrence register"
		}
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].loadIdx > edits[j].loadIdx })
	for _, e := range edits {
		f.Remove(e.loadIdx)
	}

	// Step 4c: shifting copies at the top of the loop, highest degree
	// first so nothing is overwritten prematurely.
	hdr := headerLabelIndexByName(f, ctx.loopLabel())
	if hdr < 0 {
		return false
	}
	pos := hdr + 1
	for k := degree; k >= 1; k-- {
		cp := rtl.NewAssign(recRegs[k], rtl.RX(recRegs[k-1]))
		cp.Note = "carry recurrence value"
		f.Insert(pos, cp)
		pos++
	}

	// Step 4d: initial loads in the preheader: recRegs[k-1] holds the
	// value the first iteration reads at distance k.  Inserting before
	// the header label places the code at the end of the preheader.
	insertAt := hdr
	var seq []*rtl.Instr
	for k := int64(1); k <= degree; k++ {
		addr := buildLinExpr(f, &seq, write.lin, iv, write.lin.off-k*strideIter, class)
		ld := rtl.NewLoad(fifo, addr, write.size)
		ld.Note = "preload recurrence value"
		seq = append(seq, ld)
		mv := rtl.NewAssign(recRegs[k-1], rtl.RX(fifo))
		mv.Note = "initial recurrence value"
		seq = append(seq, mv)
	}
	f.Insert(insertAt, seq...)
	return true
}

// buildLinExpr reconstructs cee*iv + bases + off as an expression,
// appending any helper instructions to seq (they are inserted together
// with the loads).
func buildLinExpr(f *rtl.Func, seq *[]*rtl.Instr, lin linform, iv rtl.Reg, off int64, class rtl.Class) rtl.Expr {
	var e rtl.Expr
	if lin.cee != 0 {
		if s := log2i64(lin.cee); s >= 0 {
			e = rtl.B(rtl.Shl, rtl.RX(iv), rtl.I(int64(s)))
		} else {
			e = rtl.B(rtl.Mul, rtl.RX(iv), rtl.I(lin.cee))
		}
	}
	for _, b := range lin.base {
		var term rtl.Expr
		if b[0] == '_' {
			t := f.NewVirt(rtl.Int)
			ins := rtl.NewAssign(t, rtl.Sym{Name: b[1:]})
			*seq = append(*seq, ins)
			term = rtl.RX(t)
		} else if r, ok := rtl.ParseReg(b); ok {
			term = rtl.RX(r)
		} else {
			continue
		}
		if e == nil {
			e = term
		} else {
			e = rtl.B(rtl.Add, e, term)
		}
	}
	if e == nil {
		e = rtl.I(off)
	} else if off != 0 {
		e = rtl.B(rtl.Add, e, rtl.I(off))
	}
	return e
}

func log2i64(n int64) int {
	for s := 0; s < 62; s++ {
		if int64(1)<<uint(s) == n {
			return s
		}
	}
	return -1
}

// headerLabelIndexByName finds a label instruction by name.
func headerLabelIndexByName(f *rtl.Func, name string) int {
	if name == "" {
		return -1
	}
	return f.FindLabel(name)
}
