package opt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wmstream/internal/rtl"
)

// Step is one element of a pipeline: either a single pass or a
// fixpoint group (a set of passes iterated until none of them changes
// the code).  OnChange steps run only when the step reported a change,
// which is how the pipelines express vpo's "re-invoke after any other
// phase" reruns as data.
type Step struct {
	// Pass is the transformation to run.  Exactly one of Pass and
	// Fixpoint must be set.
	Pass Pass
	// Fixpoint is a group of passes iterated together until a full
	// round changes nothing.
	Fixpoint []Pass
	// Name labels a fixpoint group in statistics (rendered bracketed);
	// unused for single passes.
	Name string
	// MaxRounds bounds fixpoint iteration (default 20; the groups
	// converge fast in practice).
	MaxRounds int
	// OnChange runs when this step changed the code.
	OnChange []Step
}

// fires reports whether the step changed the code.
func (s Step) run(f *rtl.Func, ctx *Context) (bool, error) {
	var changed bool
	var err error
	if s.Pass != nil {
		changed, err = runPass(s.Pass, f, ctx)
	} else {
		changed, err = runFixpoint(s, f, ctx)
	}
	if err != nil {
		return changed, err
	}
	if changed {
		for _, sub := range s.OnChange {
			if _, err := sub.run(f, ctx); err != nil {
				return true, err
			}
		}
	}
	return changed, nil
}

func runFixpoint(s Step, f *rtl.Func, ctx *Context) (bool, error) {
	max := s.MaxRounds
	if max == 0 {
		max = 20
	}
	name := "[" + s.Name + "]"
	if ctx.Sandbox && ctx.disabled[name] {
		return false, nil
	}
	var snap *rtl.Func
	if ctx.Sandbox {
		snap = f.Clone()
	}
	any := false
	rounds := 0
	converged := false
	for rounds < max {
		if err := ctx.canceled(); err != nil {
			ctx.stats.recordGroup(name, any, rounds)
			return any, err
		}
		rounds++
		changed := false
		for _, p := range s.Fixpoint {
			c, err := runPass(p, f, ctx)
			if err != nil {
				ctx.stats.recordGroup(name, any, rounds)
				return any, err
			}
			changed = changed || c
		}
		if !changed {
			converged = true
			break
		}
		any = true
	}
	// A group still changing the code after MaxRounds full rounds is
	// oscillating (two passes undoing each other): roll the whole group
	// back and disable it for this function.
	if ctx.Sandbox && !converged {
		f.Restore(snap)
		ctx.degrade(name, fmt.Sprintf("did not converge within %d rounds", max))
		ctx.stats.recordGroup(name, false, rounds)
		return false, nil
	}
	ctx.stats.recordGroup(name, any, rounds)
	return any, nil
}

// runPass executes one pass invocation.  Under the sandbox (the
// default, see sandbox.go), non-required passes are snapshotted,
// contained and rolled back on any fault; required passes — and every
// pass when the sandbox is off — run bare, so their failures abort the
// compilation of the function.
func runPass(p Pass, f *rtl.Func, ctx *Context) (bool, error) {
	if ctx.Sandbox && !requiredPasses[p.Name()] {
		return runSandboxed(p, f, ctx)
	}
	return runInstrumented(p, f, ctx)
}

// runInstrumented executes one pass invocation with instrumentation:
// wall time, fire count and instruction-count delta are recorded in
// the Context's Stats; with Debug set, the listing is dumped after
// every firing pass; with Verify set, the RTL invariant checker runs
// at the pass boundary.
func runInstrumented(p Pass, f *rtl.Func, ctx *Context) (bool, error) {
	before := instrCount(f)
	start := time.Now()
	changed, err := p.Run(f, ctx)
	dt := time.Since(start)
	delta := instrCount(f) - before
	ctx.stats.record(p.Name(), changed, dt, delta)
	if err != nil {
		return changed, fmt.Errorf("%s: %w", p.Name(), err)
	}
	if ctx.Debug != nil && changed {
		fmt.Fprintf(ctx.Debug, "==== %s: after %s (%+d instrs) ====\n%s",
			ctx.Func, p.Name(), delta, f.Listing())
	}
	if ctx.Verify {
		if err := verifyAfter(p, f, ctx); err != nil {
			return changed, err
		}
	}
	return changed, nil
}

// instrCount counts executable (non-label) instructions.
func instrCount(f *rtl.Func) int {
	n := 0
	for _, i := range f.Code {
		if i.Kind != rtl.KLabel {
			n++
		}
	}
	return n
}

// Pipeline is a pass order described as data.  The canonical
// constructors are WMPipeline and ScalarPipeline; ablation studies and
// tests can build their own.
type Pipeline struct {
	Name  string
	Steps []Step
}

// RunFunc runs the pipeline over a single function using ctx for
// parameters and instrumentation.
func (pl Pipeline) RunFunc(f *rtl.Func, ctx *Context) error {
	ctx.stats.Funcs++
	if ctx.Debug != nil {
		fmt.Fprintf(ctx.Debug, "==== %s: before %s pipeline ====\n%s", f.Name, pl.Name, f.Listing())
	}
	for _, s := range pl.Steps {
		if err := ctx.canceled(); err != nil {
			return err
		}
		if _, err := s.run(f, ctx); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the pipeline over every function of the program.
// Functions are independent, so they are optimized concurrently by a
// bounded worker pool (ctx.Workers, default GOMAXPROCS).  Statistics
// and errors are merged in function order, so the result — including
// the aggregate Stats and any error — is deterministic regardless of
// scheduling.  A non-nil ctx.Debug forces sequential execution so the
// per-pass dumps do not interleave.
func (pl Pipeline) Run(p *rtl.Program, ctx *Context) error {
	workers := ctx.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ctx.Debug != nil {
		workers = 1
	}
	if workers > len(p.Funcs) {
		workers = len(p.Funcs)
	}

	children := make([]*Context, len(p.Funcs))
	errs := make([]error, len(p.Funcs))
	optimize := func(idx int) {
		f := p.Funcs[idx]
		child := ctx.fork(f.Name)
		children[idx] = child
		if err := pl.RunFunc(f, child); err != nil {
			errs[idx] = fmt.Errorf("opt: %s: %w", f.Name, err)
		}
	}

	if workers <= 1 {
		for idx := range p.Funcs {
			optimize(idx)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range work {
					optimize(idx)
				}
			}()
		}
		for idx := range p.Funcs {
			work <- idx
		}
		close(work)
		wg.Wait()
	}

	for _, child := range children {
		if child != nil {
			ctx.stats.Merge(child.stats)
			ctx.diags = append(ctx.diags, child.diags...)
		}
	}
	return errors.Join(errs...)
}

// WMPipeline is the canonical WM compilation pipeline for the given
// options — the declarative form of the old hard-wired optimizeFunc.
func WMPipeline(o Options) Pipeline {
	return WMPipelineOrdered(o, StandardPasses())
}

// WMPipelineOrdered is WMPipeline with an explicit order for the
// standard-optimization fixpoint group.  Because the group runs to a
// fixpoint, any order converges to the same code (the paper's
// "re-invoked in any order" property); the permutation tests in
// internal/bench assert exactly that.
func WMPipelineOrdered(o Options, standard []Pass) Pipeline {
	o = o.withDefaults()
	fix := func() Step { return Step{Name: "standard", Fixpoint: standard} }
	var steps []Step
	if o.Standard {
		steps = append(steps, fix(), Step{Pass: PassLICM}, fix())
	}
	if o.Recurrence {
		s := Step{Pass: PassRecurrences}
		if o.Standard {
			s.OnChange = []Step{fix()}
		}
		steps = append(steps, s)
	}
	if o.Stream {
		s := Step{Pass: PassStreams}
		if o.Standard {
			s.OnChange = []Step{fix()}
		}
		steps = append(steps, s)
	}
	// Combining first folds address arithmetic into the dual-operation
	// loads and stores; strength reduction then only rewrites addresses
	// the instruction format cannot absorb (paper streaming step 3).
	if o.Combine {
		steps = append(steps, Step{Pass: PassCombine})
		if o.Standard {
			steps = append(steps, fix())
		}
	}
	if o.StrengthReduce {
		s := Step{Pass: PassStrengthReduce}
		if o.Standard {
			on := []Step{fix()}
			if o.Combine {
				on = append(on, Step{Pass: PassCombine}, fix())
			}
			s.OnChange = on
		}
		steps = append(steps, s)
	}
	if o.Stream || o.StrengthReduce {
		s := Step{Pass: PassDeadIVs}
		if o.Standard {
			s.OnChange = []Step{fix()}
		}
		steps = append(steps, s)
	}
	if o.Standard {
		// Schedule loop tests early so conditional jumps are free and
		// the IFU dispatches the next iteration's accesses while the
		// current one computes (the paper's CC-scheduling discipline).
		steps = append(steps, Step{Pass: PassScheduleLoopTest})
	}
	steps = append(steps,
		Step{Pass: PassLegalize},
		Step{Pass: PassRegAlloc},
		Step{Pass: PassCleanBranches},
		Step{Pass: PassRenumber},
	)
	return Pipeline{Name: "wm", Steps: steps}
}

// ScalarPipeline is the compilation pipeline for a conventional target
// machine (the Table I experiments): the standard optimizations,
// optionally the recurrence algorithm, and strength reduction of *all*
// induction-variable addressing (conventional addressing modes cannot
// absorb it the way WM's dual-operation loads can, and pointer
// stepping becomes auto-increment addressing — Figure 6).  Streaming
// and dual-operation combining are never run: the target has no SCUs
// and no two-operation instructions.
func ScalarPipeline(recurrence bool) Pipeline {
	fix := func() Step { return Step{Name: "standard", Fixpoint: StandardPasses()} }
	steps := []Step{fix(), {Pass: PassLICM}, fix()}
	if recurrence {
		steps = append(steps, Step{Pass: PassRecurrences, OnChange: []Step{fix()}})
	}
	steps = append(steps, Step{
		Pass:     PassStrengthReduceAll,
		OnChange: []Step{fix(), {Pass: PassDeadIVs}, fix()},
	})
	steps = append(steps,
		Step{Pass: PassLegalize},
		Step{Pass: PassRegAlloc},
		Step{Pass: PassCleanBranches},
		Step{Pass: PassRenumber},
	)
	return Pipeline{Name: "scalar", Steps: steps}
}
