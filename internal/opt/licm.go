package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// LICM hoists loop-invariant assignments into loop preheaders.  It is
// the "code motion" phase the paper requires to run before recurrence
// detection: it moves the llh/sll address materializations of global
// arrays out of the loop (Figure 4 lines 4-9).
func LICM(f *rtl.Func) (bool, error) {
	changed := false
	// Innermost-first so invariants bubble outward over iterations of
	// the fixpoint driver.  Each inner round hoists one instruction.
	for round := 0; round < 500; round++ {
		more, err := licmOnce(f)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func licmOnce(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	loops := g.NaturalLoops()
	for _, l := range loops {
		moved, err := hoistLoop(f, g, l)
		if err != nil {
			return false, err
		}
		if moved {
			return true, nil // code moved: rebuild analyses
		}
	}
	return false, nil
}

func hoistLoop(f *rtl.Func, g *cfg.Graph, l *cfg.Loop) (bool, error) {
	pre := EnsurePreheader(f, g, l)
	if pre < 0 {
		return false, nil
	}
	// Re-analyze after potential preheader insertion.
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	l = findLoopByHeaderLabel(g, headerLabel(f, pre))
	if l == nil {
		return false, nil
	}

	// Registers defined in the loop, and how many times.
	defs := map[rtl.Reg]int{}
	hasCall := false
	for _, b := range l.BlockList() {
		for _, i := range b.Instrs(f) {
			if d, ok := i.Def(); ok {
				defs[d]++
			}
			if i.Kind == rtl.KCall {
				hasCall = true
			}
		}
	}
	invariantReg := func(r rtl.Reg) bool {
		if r.IsZero() {
			return true
		}
		if r.IsFIFO() {
			return false
		}
		if hasCall && !r.IsVirtual() {
			return false // calls clobber physical registers
		}
		return defs[r] == 0
	}

	if hoistInvariantLoads(f, g, l) {
		return true, nil
	}

	var hoisted []*rtl.Instr
	preInsert := preheaderInsertPos(f, pre)
	for _, b := range l.BlockList() {
		if !dominatesAllLatches(g, l, b) {
			continue
		}
		for n := b.Start; n < b.End; n++ {
			i := f.Code[n]
			if i.Kind != rtl.KAssign || i.HasSideEffects() {
				continue
			}
			d := i.Dst
			if d.IsZero() || d.IsFIFO() || defs[d] != 1 {
				continue
			}
			if !safeToSpeculate(i.Src) {
				continue
			}
			inv := true
			rtl.ExprRegs(i.Src, func(r rtl.Reg) {
				if !invariantReg(r) {
					inv = false
				}
			})
			if !inv {
				continue
			}
			// The destination must not be live on entry to the loop
			// (its pre-loop value would be clobbered by hoisting).
			g.Liveness()
			if l.Header.LiveIn.Has(d) && usedBeforeDefInLoop(f, g, l, d, n) {
				continue
			}
			hoisted = append(hoisted, i)
			f.Remove(n)
			if n < preInsert {
				preInsert--
			}
			f.Insert(preInsert, i)
			return true, nil // structural change: restart analysis
		}
	}
	_ = hoisted
	return false, nil
}

// hoistInvariantLoads moves a load/dequeue pair of an invariant
// address out of the loop when no store in the loop can touch that
// address.  This is what keeps scalar globals such as loop bounds in
// registers (the paper's Figure 4 has n in r23), which the trip-count
// analysis of the streaming pass depends on.
func hoistInvariantLoads(f *rtl.Func, g *cfg.Graph, l *cfg.Loop) bool {
	ctx := analyzeLoop(f, g, l)
	if ctx.hasCall {
		return false
	}
	// Collect the base regions of every store in the loop; an unknown
	// store blocks all load hoisting.
	var storeBases []string
	for _, b := range l.BlockList() {
		for n := b.Start; n < b.End; n++ {
			i := f.Code[n]
			if i.Kind == rtl.KStore || i.Kind == rtl.KStreamOut {
				if i.Kind == rtl.KStreamOut {
					return false
				}
				lin := ctx.linearize(i.Addr, n, 0)
				if !lin.ok {
					return false
				}
				key := lin.baseKey()
				if key[0] != '_' {
					return false // pointer store could alias anything
				}
				storeBases = append(storeBases, key)
			}
		}
	}
	for _, b := range l.BlockList() {
		if !dominatesAllLatches(g, l, b) {
			continue
		}
		for n := b.Start; n+1 < b.End; n++ {
			ld := f.Code[n]
			if ld.Kind != rtl.KLoad {
				continue
			}
			deq := f.Code[n+1]
			if deq.Kind != rtl.KAssign {
				continue
			}
			rx, isReg := deq.Src.(rtl.RegX)
			fifo := rtl.Reg{Class: ld.MemClass, N: ld.FIFO.N}
			if !isReg || rx.Reg != fifo || deq.Dst.IsFIFO() || deq.Dst.IsZero() {
				continue
			}
			if ctx.defCount[deq.Dst] != 1 {
				continue
			}
			// Invariant address?
			inv := true
			rtl.ExprRegs(ld.Addr, func(r rtl.Reg) {
				if !ctx.invariant(r) {
					inv = false
				}
			})
			if !inv {
				continue
			}
			// Alias-free against every store?
			lin := ctx.linearize(ld.Addr, n, 0)
			if !lin.ok {
				continue
			}
			key := lin.baseKey()
			if key[0] != '_' {
				continue // pointer load: region unknown
			}
			aliased := false
			for _, sb := range storeBases {
				if sb == key {
					aliased = true
				}
			}
			if aliased {
				continue
			}
			// Move the pair to the end of the preheader.
			hdr := headerLabelIndex(f, g, l)
			if hdr < 0 || hdr > n {
				continue
			}
			f.Remove(n + 1)
			f.Remove(n)
			f.Insert(hdr, ld, deq)
			return true
		}
	}
	return false
}

// usedBeforeDefInLoop reports whether d could be read in the loop
// before the definition at index defIdx executes — i.e. whether the
// pre-loop value of d is observable.  With a single in-loop definition
// that dominates all latches, only uses on the path from the header to
// the definition matter; we approximate by checking liveness into the
// definition's block.
func usedBeforeDefInLoop(f *rtl.Func, g *cfg.Graph, l *cfg.Loop, d rtl.Reg, defIdx int) bool {
	b := g.BlockOf(defIdx)
	if b == nil {
		return true
	}
	// Within the block: any earlier use?
	for n := b.Start; n < defIdx; n++ {
		for _, u := range f.Code[n].Uses(nil) {
			if u == d {
				return true
			}
		}
	}
	// Into the block from elsewhere in the loop: live-in implies a use
	// upstream; if the block is the header, the live-in value is the
	// hoisted one (fine), otherwise conservative.
	if b == l.Header {
		return false
	}
	return b.LiveIn.Has(d)
}

// safeToSpeculate reports whether evaluating e cannot trap: division by
// a non-constant is excluded.
func safeToSpeculate(e rtl.Expr) bool {
	safe := true
	rtl.WalkExpr(e, func(x rtl.Expr) {
		if b, ok := x.(rtl.Bin); ok && (b.Op == rtl.Div || b.Op == rtl.Rem) {
			if c, isC := b.R.(rtl.Imm); !isC || c.V == 0 {
				safe = false
			}
		}
	})
	return safe
}

func dominatesAllLatches(g *cfg.Graph, l *cfg.Loop, b *cfg.Block) bool {
	for _, latch := range l.Latches {
		if !g.Dominates(b, latch) {
			return false
		}
	}
	return true
}

// --- preheader management ------------------------------------------------

// freshPreheaderLabel picks the lowest unused LP<n> label name in the
// function.  Numbering is per-function (labels are function-scoped in
// the linker) and derived only from the function's own code, so
// optimizing functions concurrently — or in any order — yields
// identical names.  A package-level counter here would be both a data
// race and a determinism leak under the parallel engine.
func freshPreheaderLabel(f *rtl.Func) string {
	max := 0
	for _, i := range f.Code {
		if i.Kind != rtl.KLabel || len(i.Name) < 3 || i.Name[:2] != "LP" {
			continue
		}
		if n, ok := atoi(i.Name[2:]); ok && n > max {
			max = n
		}
	}
	return "LP" + itoa(max+1)
}

// EnsurePreheader guarantees the loop has a dedicated preheader block
// and returns the index of the header's label instruction (from which
// preheaderInsertPos derives where to insert).  It returns -1 when the
// loop header has no label (cannot happen for generated code).
//
// The transformation is textual: a fresh label is placed immediately
// before the header label and every branch to the header from outside
// the loop is retargeted to it.  Fall-through entry naturally passes
// through the new label.
func EnsurePreheader(f *rtl.Func, g *cfg.Graph, l *cfg.Loop) int {
	if l.Preheader != nil {
		return headerLabelIndex(f, g, l)
	}
	hdrIdx := headerLabelIndex(f, g, l)
	if hdrIdx < 0 {
		return -1
	}
	hdrName := f.Code[hdrIdx].Name
	preName := freshPreheaderLabel(f)
	// Retarget outside branches.
	inLoop := map[int]bool{}
	for _, b := range l.BlockList() {
		for n := b.Start; n < b.End; n++ {
			inLoop[n] = true
		}
	}
	for n, i := range f.Code {
		if inLoop[n] {
			continue
		}
		switch i.Kind {
		case rtl.KJump, rtl.KCondJump, rtl.KJumpNotDone:
			if i.Target == hdrName {
				i.Target = preName
			}
		}
	}
	f.Insert(hdrIdx, rtl.NewLabel(preName))
	return hdrIdx + 1
}

// preheaderInsertPos returns the position where hoisted code should be
// inserted: immediately before the header label (i.e. at the end of the
// preheader).
func preheaderInsertPos(f *rtl.Func, hdrLabelIdx int) int { return hdrLabelIdx }

func headerLabelIndex(f *rtl.Func, g *cfg.Graph, l *cfg.Loop) int {
	for n := l.Header.Start; n < l.Header.End; n++ {
		if f.Code[n].Kind == rtl.KLabel {
			return n
		}
	}
	return -1
}

func headerLabel(f *rtl.Func, hdrLabelIdx int) string {
	if hdrLabelIdx >= 0 && hdrLabelIdx < len(f.Code) && f.Code[hdrLabelIdx].Kind == rtl.KLabel {
		return f.Code[hdrLabelIdx].Name
	}
	return ""
}

func findLoopByHeaderLabel(g *cfg.Graph, label string) *cfg.Loop {
	if label == "" {
		return nil
	}
	hb := g.LabelBlock(label)
	if hb == nil {
		return nil
	}
	for _, l := range g.NaturalLoops() {
		if l.Header == hb {
			return l
		}
	}
	return nil
}

func atoi(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	return n, true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
