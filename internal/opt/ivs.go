package opt

import (
	"fmt"
	"sort"
	"strings"

	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// This file implements the loop analysis both headline algorithms rely
// on: basic induction variables, the linear form cee*iv + base + offset
// of memory addresses (the paper's (iv, cee, dee) vectors), and the
// partitioning of a loop's memory references into disjoint regions.

// ivInfo describes a basic induction variable: a register with exactly
// one definition in the loop, of the form iv := iv + step, whose
// definition executes on every iteration.  The step is usually a
// constant; it may also be a loop-invariant register (regStep), which
// the paper's hardware supports directly since the stream stride is a
// register operand — the sieve's prime-strided marking loop relies on
// this.  Register steps are assumed positive (upward loops only).
type ivInfo struct {
	step    int64
	stepReg rtl.Reg
	regStep bool
	defIdx  int
}

// stepExpr returns the per-iteration increment as an expression.
func (iv ivInfo) stepExpr() rtl.Expr {
	if iv.regStep {
		return rtl.RX(iv.stepReg)
	}
	return rtl.I(iv.step)
}

// loopCtx gathers everything the transforms need about one loop.
type loopCtx struct {
	f    *rtl.Func
	g    *cfg.Graph
	loop *cfg.Loop

	ivs      map[rtl.Reg]ivInfo
	defCount map[rtl.Reg]int
	defIdx   map[rtl.Reg][]int
	hasCall  bool
	hasIO    bool
	stream   bool // loop already contains stream instructions

	hdrLabelIdx int // index of the header's label instruction
}

// analyzeLoop builds a loopCtx.  The loop must already have a
// preheader (EnsurePreheader).
func analyzeLoop(f *rtl.Func, g *cfg.Graph, l *cfg.Loop) *loopCtx {
	ctx := &loopCtx{
		f: f, g: g, loop: l,
		ivs:      map[rtl.Reg]ivInfo{},
		defCount: map[rtl.Reg]int{},
		defIdx:   map[rtl.Reg][]int{},
	}
	for _, b := range l.BlockList() {
		for n := b.Start; n < b.End; n++ {
			i := f.Code[n]
			if d, ok := i.Def(); ok {
				ctx.defCount[d]++
				ctx.defIdx[d] = append(ctx.defIdx[d], n)
			}
			switch i.Kind {
			case rtl.KCall:
				ctx.hasCall = true
			case rtl.KPut:
				ctx.hasIO = true
			case rtl.KStreamIn, rtl.KStreamOut, rtl.KStreamStop, rtl.KJumpNotDone:
				ctx.stream = true
			}
		}
	}
	ctx.hdrLabelIdx = headerLabelIndex(f, g, l)
	// Basic induction variables.
	for r, cnt := range ctx.defCount {
		if cnt != 1 || r.IsZero() || r.IsFIFO() {
			continue
		}
		idx := ctx.defIdx[r][0]
		i := f.Code[idx]
		if i.Kind != rtl.KAssign || i.HasSideEffects() {
			continue
		}
		b, ok := i.Src.(rtl.Bin)
		if !ok {
			continue
		}
		lx, lok := b.L.(rtl.RegX)
		if !lok || lx.Reg != r {
			continue
		}
		info := ivInfo{defIdx: idx}
		switch c := b.R.(type) {
		case rtl.Imm:
			switch b.Op {
			case rtl.Add:
				info.step = c.V
			case rtl.Sub:
				info.step = -c.V
			default:
				continue
			}
			if info.step == 0 {
				continue
			}
		case rtl.RegX:
			// iv := iv + s with an invariant register step.
			if b.Op != rtl.Add || c.Reg.IsFIFO() || c.Reg.IsZero() {
				continue
			}
			if ctx.defCount[c.Reg] != 0 || (ctx.hasCall && !c.Reg.IsVirtual()) {
				continue
			}
			info.regStep = true
			info.stepReg = c.Reg
		default:
			continue
		}
		// The increment must run every iteration.
		blk := g.BlockOf(idx)
		if !dominatesAllLatches(g, ctx.loop, blk) {
			continue
		}
		ctx.ivs[r] = info
	}
	return ctx
}

// invariant reports whether the register's value is fixed for the
// duration of the loop.
func (ctx *loopCtx) invariant(r rtl.Reg) bool {
	if r.IsZero() {
		return true
	}
	if r.IsFIFO() {
		return false
	}
	if ctx.hasCall && !r.IsVirtual() {
		return false
	}
	return ctx.defCount[r] == 0
}

// --- linear address forms -------------------------------------------------

// linform is the analyzed shape of an address: cee*iv + bases + off,
// the paper's (iv, cee, dee) with dee split into symbolic bases plus a
// constant.
type linform struct {
	iv   rtl.Reg // zero value (ZeroReg) when no induction variable
	cee  int64
	base []string // sorted symbolic base terms ("_x", "r21", ...)
	off  int64
	ok   bool
	// expanded records that in-loop helper definitions were substituted
	// to reach this form, i.e. the address costs extra body
	// instructions (strength reduction's profitability signal).
	expanded bool
}

func (lf linform) hasIV() bool { return lf.cee != 0 }

// baseKey identifies the memory region the reference belongs to.
func (lf linform) baseKey() string {
	if len(lf.base) == 0 {
		return "<abs>"
	}
	return strings.Join(lf.base, "+")
}

// linearize analyzes the address expression of the instruction at
// index atIdx.  Registers that are neither induction variables nor
// invariant are expanded through their single in-loop definition when
// that definition provably computes the same value at atIdx.
func (ctx *loopCtx) linearize(e rtl.Expr, atIdx int, depth int) linform {
	bad := linform{}
	if depth > 8 {
		return bad
	}
	switch x := e.(type) {
	case rtl.Imm:
		return linform{off: x.V, ok: true}
	case rtl.Sym:
		return linform{base: []string{"_" + x.Name}, off: x.Off, ok: true}
	case rtl.RegX:
		r := x.Reg
		if r.IsZero() {
			return linform{ok: true}
		}
		if _, isIV := ctx.ivs[r]; isIV {
			return linform{iv: r, cee: 1, ok: true}
		}
		if ctx.invariant(r) {
			// An invariant register holding a symbol participates via
			// its symbol name when we can see the defining instruction
			// in the preheader chain; otherwise the register itself is
			// the base term.
			if sym, ok := ctx.invariantSym(r); ok {
				return linform{base: []string{"_" + sym.Name}, off: sym.Off, ok: true}
			}
			return linform{base: []string{r.String()}, ok: true}
		}
		return ctx.expandReg(r, atIdx, depth)
	case rtl.Bin:
		l := ctx.linearize(x.L, atIdx, depth+1)
		r := ctx.linearize(x.R, atIdx, depth+1)
		if !l.ok || !r.ok {
			return bad
		}
		switch x.Op {
		case rtl.Add:
			return addLin(l, r)
		case rtl.Sub:
			neg, ok := negLin(r)
			if !ok {
				return bad
			}
			return addLin(l, neg)
		case rtl.Shl:
			if c, isC := x.R.(rtl.Imm); isC && c.V >= 0 && c.V < 32 && len(l.base) == 0 {
				return scaleLin(l, 1<<uint(c.V))
			}
			return bad
		case rtl.Mul:
			if c, isC := x.R.(rtl.Imm); isC && len(l.base) == 0 {
				return scaleLin(l, c.V)
			}
			return bad
		}
		return bad
	}
	return bad
}

// invariantSym resolves an invariant register to the symbol it was
// loaded with, by scanning backwards from the loop preheader.
func (ctx *loopCtx) invariantSym(r rtl.Reg) (rtl.Sym, bool) {
	// Find the last definition of r before the loop header.
	for n := ctx.loop.Header.Start - 1; n >= 0; n-- {
		i := ctx.f.Code[n]
		if d, ok := i.Def(); ok && d == r {
			if s, isSym := i.Src.(rtl.Sym); isSym && i.Kind == rtl.KAssign {
				return s, true
			}
			return rtl.Sym{}, false
		}
	}
	return rtl.Sym{}, false
}

// expandReg substitutes the single in-loop definition of r, provided
// the definition reaches atIdx unchanged: same block, earlier position,
// and nothing the definition depends on (including r itself) is
// redefined in between.
func (ctx *loopCtx) expandReg(r rtl.Reg, atIdx, depth int) linform {
	bad := linform{}
	if ctx.defCount[r] != 1 {
		return bad
	}
	defIdx := ctx.defIdx[r][0]
	i := ctx.f.Code[defIdx]
	if i.Kind != rtl.KAssign || i.HasSideEffects() {
		return bad
	}
	b := ctx.g.BlockOf(atIdx)
	db := ctx.g.BlockOf(defIdx)
	if b == nil || db == nil || b != db || defIdx >= atIdx {
		return bad
	}
	// No register used by the definition may be redefined in between.
	used := map[rtl.Reg]bool{r: true}
	rtl.ExprRegs(i.Src, func(u rtl.Reg) { used[u] = true })
	for k := defIdx + 1; k < atIdx; k++ {
		if d, ok := ctx.f.Code[k].Def(); ok && used[d] {
			return bad
		}
	}
	out := ctx.linearize(i.Src, defIdx, depth+1)
	out.expanded = true
	return out
}

func addLin(a, b linform) linform {
	out := linform{ok: true}
	switch {
	case a.cee == 0:
		out.iv, out.cee = b.iv, b.cee
	case b.cee == 0:
		out.iv, out.cee = a.iv, a.cee
	case a.iv == b.iv:
		out.iv, out.cee = a.iv, a.cee+b.cee
	default:
		return linform{} // two different induction variables
	}
	out.base = append(append([]string{}, a.base...), b.base...)
	sort.Strings(out.base)
	out.off = a.off + b.off
	out.expanded = a.expanded || b.expanded
	return out
}

func negLin(a linform) (linform, bool) {
	if len(a.base) > 0 {
		return linform{}, false
	}
	return linform{iv: a.iv, cee: -a.cee, off: -a.off, ok: true, expanded: a.expanded}, true
}

func scaleLin(a linform, k int64) linform {
	if len(a.base) > 0 {
		return linform{}
	}
	return linform{iv: a.iv, cee: a.cee * k, off: a.off * k, ok: true, expanded: a.expanded}
}

// --- memory references and partitions -------------------------------------

// memRef is one load or store in the loop together with its linear
// form and the FIFO-side instruction that carries its datum.
type memRef struct {
	accIdx  int // index of the KLoad/KStore
	dataIdx int // index of the dequeue (loads) / enqueue (stores); -1 if unmatched
	write   bool
	lin     linform
	size    int
	class   rtl.Class
	every   bool // executes on every iteration (block dominates latches)
	unknown bool // address not analyzable: aliases everything
}

// partition groups references that touch one memory region, mirroring
// the paper's partitions.
type partition struct {
	key    string
	refs   []*memRef
	unsafe bool
}

// collectRefs finds every memory reference in the loop and pairs each
// with its datum instruction.  It returns ok=false when FIFO discipline
// cannot be established (a reference's datum instruction cannot be
// identified), in which case the loop must be left alone.
func (ctx *loopCtx) collectRefs() (refs []*memRef, ok bool) {
	f := ctx.f
	for b := range ctx.loop.Blocks {
		for n := b.Start; n < b.End; n++ {
			i := f.Code[n]
			switch i.Kind {
			case rtl.KLoad:
				r := &memRef{accIdx: n, write: false, size: i.MemSize, class: i.MemClass}
				r.dataIdx = ctx.findDequeue(b, n, i)
				if r.dataIdx < 0 {
					return nil, false
				}
				r.lin = ctx.linearize(i.Addr, n, 0)
				r.unknown = !r.lin.ok
				r.every = dominatesAllLatches(ctx.g, ctx.loop, b)
				refs = append(refs, r)
			case rtl.KStore:
				r := &memRef{accIdx: n, write: true, size: i.MemSize, class: i.MemClass}
				r.dataIdx = ctx.findEnqueue(b, n, i)
				if r.dataIdx < 0 {
					return nil, false
				}
				r.lin = ctx.linearize(i.Addr, n, 0)
				r.unknown = !r.lin.ok
				r.every = dominatesAllLatches(ctx.g, ctx.loop, b)
				refs = append(refs, r)
			}
		}
	}
	return refs, true
}

// findDequeue locates the instruction consuming the load's datum: the
// next read of the load's FIFO register in the same block, with no
// other load of that FIFO in between.
func (ctx *loopCtx) findDequeue(b *cfg.Block, loadIdx int, load *rtl.Instr) int {
	fifo := rtl.Reg{Class: load.MemClass, N: load.FIFO.N}
	for n := loadIdx + 1; n < b.End; n++ {
		i := ctx.f.Code[n]
		if i.Kind == rtl.KLoad && i.MemClass == load.MemClass && i.FIFO.N == load.FIFO.N {
			return -1 // another request before ours was consumed
		}
		reads := 0
		for _, u := range i.Uses(nil) {
			if u == fifo {
				reads++
			}
		}
		if reads == 1 {
			return n
		}
		if reads > 1 {
			return -1 // multi-dequeue instruction: ambiguous pairing
		}
	}
	return -1
}

// findEnqueue locates the instruction producing the store's datum: the
// closest preceding write to the store's FIFO register in the same
// block, with no other store of that FIFO in between.
func (ctx *loopCtx) findEnqueue(b *cfg.Block, storeIdx int, store *rtl.Instr) int {
	for n := storeIdx - 1; n >= b.Start; n-- {
		i := ctx.f.Code[n]
		if i.Kind == rtl.KStore && i.MemClass == store.MemClass && i.FIFO.N == store.FIFO.N {
			return -1
		}
		if i.Kind == rtl.KAssign && i.Dst.Class == store.MemClass && i.Dst.N == store.FIFO.N {
			return n
		}
	}
	return -1
}

// buildPartitions implements the paper's step 1-3: group references by
// region, attach unknown references everywhere, and apply the safety
// tests (same induction variable, same cee, offsets on the same
// lattice).
func buildPartitions(refs []*memRef) []*partition {
	byKey := map[string]*partition{}
	var order []string
	var unknowns []*memRef
	for _, r := range refs {
		if r.unknown {
			unknowns = append(unknowns, r)
			continue
		}
		key := r.lin.baseKey()
		p := byKey[key]
		if p == nil {
			p = &partition{key: key}
			byKey[key] = p
			order = append(order, key)
		}
		p.refs = append(p.refs, r)
	}
	// References whose region is unknown join every partition (paper
	// step 1) and poison them.
	parts := make([]*partition, 0, len(order))
	sort.Strings(order)
	for _, key := range order {
		p := byKey[key]
		if len(unknowns) > 0 {
			p.refs = append(p.refs, unknowns...)
			p.unsafe = true
		}
		// Distinct register-based regions may alias each other and any
		// symbol: only symbol-named regions are provably disjoint.
		parts = append(parts, p)
	}
	// "For memory references made via pointers, it is often the case
	// that it is impossible to tell what regions of memory may be
	// accessed" (paper step 1): a reference whose base is a register
	// rather than a named symbol may overlap anything, so its presence
	// poisons every partition.
	regBased := 0
	for _, p := range parts {
		if !strings.HasPrefix(p.key, "_") {
			regBased++
		}
	}
	if regBased > 0 {
		for _, p := range parts {
			p.unsafe = true
		}
	}
	// Step 3 safety tests.
	for _, p := range parts {
		if p.unsafe {
			continue
		}
		first := p.refs[0]
		for _, r := range p.refs {
			if !r.lin.hasIV() || r.lin.iv != first.lin.iv || r.lin.cee != first.lin.cee {
				p.unsafe = true
				break
			}
			if mod(r.lin.off-first.lin.off, r.lin.cee) != 0 {
				p.unsafe = true
				break
			}
			if r.class != first.class || r.size != first.size {
				p.unsafe = true
				break
			}
		}
	}
	return parts
}

func mod(a, m int64) int64 {
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return a
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// loopLabel returns the header label name (for diagnostics and for the
// jnd rewrite).
func (ctx *loopCtx) loopLabel() string {
	if ctx.hdrLabelIdx >= 0 && ctx.hdrLabelIdx < len(ctx.f.Code) && ctx.f.Code[ctx.hdrLabelIdx].Kind == rtl.KLabel {
		return ctx.f.Code[ctx.hdrLabelIdx].Name
	}
	return ""
}

var _ = fmt.Sprintf
