package opt

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// tracePass records its invocations and reports "changed" a fixed
// number of times before settling (so fixpoint loops terminate).
type tracePass struct {
	name  string
	fires int
	log   *[]string
	calls int
	err   error
}

func (p *tracePass) Name() string { return p.name }
func (p *tracePass) Run(f *rtl.Func, ctx *Context) (bool, error) {
	p.calls++
	if p.log != nil {
		*p.log = append(*p.log, p.name)
	}
	if p.err != nil {
		return false, p.err
	}
	if p.calls <= p.fires {
		return true, nil
	}
	return false, nil
}

func emptyFunc() *rtl.Func {
	f := rtl.NewFunc("t")
	f.Append(&rtl.Instr{Kind: rtl.KRet})
	return f
}

func TestStepOnChangeRunsOnlyWhenFired(t *testing.T) {
	var log []string
	fired := &tracePass{name: "fired", fires: 1, log: &log}
	follow := &tracePass{name: "follow", log: &log}
	quiet := &tracePass{name: "quiet", log: &log}
	follow2 := &tracePass{name: "follow2", log: &log}
	pl := Pipeline{Name: "test", Steps: []Step{
		{Pass: fired, OnChange: []Step{{Pass: follow}}},
		{Pass: quiet, OnChange: []Step{{Pass: follow2}}},
	}}
	if err := pl.RunFunc(emptyFunc(), NewContext(Options{})); err != nil {
		t.Fatal(err)
	}
	want := "fired,follow,quiet"
	if got := strings.Join(log, ","); got != want {
		t.Errorf("invocation order %q, want %q", got, want)
	}
}

func TestFixpointIteratesUntilStable(t *testing.T) {
	a := &tracePass{name: "a", fires: 3}
	b := &tracePass{name: "b"}
	pl := Pipeline{Name: "test", Steps: []Step{{Name: "g", Fixpoint: []Pass{a, b}}}}
	ctx := NewContext(Options{})
	if err := pl.RunFunc(emptyFunc(), ctx); err != nil {
		t.Fatal(err)
	}
	// Rounds 1-3 change (a fires), round 4 is the quiet round.
	if a.calls != 4 || b.calls != 4 {
		t.Errorf("calls a=%d b=%d, want 4 each", a.calls, b.calls)
	}
	g := ctx.Stats().Pass("[g]")
	if g.Calls != 1 || g.Fires != 1 || g.Rounds != 4 {
		t.Errorf("group stats %+v, want calls=1 fires=1 rounds=4", g)
	}
	st := ctx.Stats().Pass("a")
	if st.Calls != 4 || st.Fires != 3 {
		t.Errorf("pass a stats %+v, want calls=4 fires=3", st)
	}
}

func TestFixpointRespectsMaxRounds(t *testing.T) {
	a := &tracePass{name: "a", fires: 1 << 30} // never settles
	pl := Pipeline{Name: "test", Steps: []Step{{Name: "g", Fixpoint: []Pass{a}, MaxRounds: 5}}}
	if err := pl.RunFunc(emptyFunc(), NewContext(Options{})); err != nil {
		t.Fatal(err)
	}
	if a.calls != 5 {
		t.Errorf("pass ran %d times, want 5 (MaxRounds)", a.calls)
	}
}

func TestRunAggregatesErrorsInFunctionOrder(t *testing.T) {
	p := &rtl.Program{}
	for _, name := range []string{"f1", "f2", "f3", "f4"} {
		f := rtl.NewFunc(name)
		f.Append(&rtl.Instr{Kind: rtl.KRet})
		p.Funcs = append(p.Funcs, f)
	}
	boom := NewPass("boom", func(f *rtl.Func, _ *Context) (bool, error) {
		if f.Name == "f2" || f.Name == "f4" {
			return false, fmt.Errorf("cannot compile %s", f.Name)
		}
		return false, nil
	})
	pl := Pipeline{Name: "test", Steps: []Step{{Pass: boom}}}
	for _, workers := range []int{1, 4} {
		ctx := NewContext(Options{})
		ctx.Sandbox = false // hard-error semantics under test
		ctx.Workers = workers
		err := pl.Run(p, ctx)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		msg := err.Error()
		i2, i4 := strings.Index(msg, "opt: f2:"), strings.Index(msg, "opt: f4:")
		if i2 < 0 || i4 < 0 || i2 > i4 {
			t.Errorf("workers=%d: errors not aggregated in function order: %q", workers, msg)
		}
	}
}

func TestParallelRunIsDeterministic(t *testing.T) {
	// Built from RTL directly to keep this package free of frontend
	// imports: several copies of the same loop under different names.
	mk := func() *rtl.Program {
		p := &rtl.Program{}
		for n := 0; n < 6; n++ {
			src := `.func f` + fmt.Sprint(n) + `
rv0 := 0
rv1 := 0
L1:
rv2 := (rv1 << 2)
rv0 := (rv0 + rv2)
rv1 := (rv1 + 1)
r31 := (rv1 < 64)
jumpTr L1
r2 := rv0
ret
.end
`
			q, err := rtl.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			f := q.Funcs[0]
			f.SetNumVirt(rtl.Int, 16)
			p.Funcs = append(p.Funcs, f)
		}
		return p
	}

	var want string
	var wantStats []PassStats
	for _, workers := range []int{1, 4, 8} {
		p := mk()
		ctx := NewContext(Level(3))
		ctx.Workers = workers
		ctx.Verify = true
		if err := WMPipeline(ctx.Opts).Run(p, ctx); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := p.String()
		stats := ctx.Stats().Passes()
		if want == "" {
			want, wantStats = got, stats
			continue
		}
		if got != want {
			t.Errorf("workers=%d: listing differs from sequential run", workers)
		}
		if len(stats) != len(wantStats) {
			t.Fatalf("workers=%d: %d stat rows, want %d", workers, len(stats), len(wantStats))
		}
		for i := range stats {
			s, w := stats[i], wantStats[i]
			if s.Name != w.Name || s.Calls != w.Calls || s.Fires != w.Fires || s.InstrDelta != w.InstrDelta || s.Rounds != w.Rounds {
				t.Errorf("workers=%d: stats row %d = %+v, want %+v (time excluded)", workers, i, s, w)
			}
		}
	}
}

func TestVerifyCatchesCorruptingPass(t *testing.T) {
	corrupt := NewPass("corrupt", func(f *rtl.Func, _ *Context) (bool, error) {
		f.Append(rtl.NewJump("NOPE"))
		return true, nil
	})
	pl := Pipeline{Name: "test", Steps: []Step{{Pass: corrupt}}}
	ctx := NewContext(Options{})
	ctx.Sandbox = false // hard-error semantics under test
	ctx.Verify = true
	err := pl.RunFunc(emptyFunc(), ctx)
	if err == nil {
		t.Fatal("corrupting pass not caught")
	}
	if !strings.Contains(err.Error(), "corrupt") || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("error does not identify pass and damage: %v", err)
	}
}

func TestVerifyRejectsVirtualRegistersAfterRegAlloc(t *testing.T) {
	leak := NewPass("leak", func(f *rtl.Func, _ *Context) (bool, error) {
		f.Insert(0, rtl.NewAssign(rtl.R(2), rtl.RegX{Reg: rtl.Reg{Class: rtl.Int, N: rtl.VirtualBase}}))
		return true, nil
	})
	pl := Pipeline{Name: "test", Steps: []Step{{Pass: PassRegAlloc}, {Pass: leak}}}
	ctx := NewContext(Options{})
	ctx.Sandbox = false // hard-error semantics under test
	ctx.Verify = true
	err := pl.RunFunc(emptyFunc(), ctx)
	if err == nil || !strings.Contains(err.Error(), "virtual register") {
		t.Errorf("virtual register leak after RegAlloc not caught: %v", err)
	}
}

func TestOptimizeStillSequentialized(t *testing.T) {
	// Optimize (the classic entry point) must produce a fully
	// allocated, invariant-clean program.
	p, err := rtl.Parse(`.func main
rv0 := 41
rv0 := (rv0 + 1)
r2 := rv0
halt
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	p.Funcs[0].SetNumVirt(rtl.Int, 4)
	if err := Optimize(p, Level(3)); err != nil {
		t.Fatal(err)
	}
	if err := rtl.CheckProgram(p, false); err != nil {
		t.Errorf("optimized program fails invariants: %v", err)
	}
}

func TestErrorsJoinUnwraps(t *testing.T) {
	// A single-function failure is still matchable with errors.Is.
	sentinel := errors.New("sentinel")
	boom := NewPass("boom", func(*rtl.Func, *Context) (bool, error) { return false, sentinel })
	p := &rtl.Program{Funcs: []*rtl.Func{emptyFunc()}}
	ctx := NewContext(Options{})
	ctx.Sandbox = false // hard-error semantics under test
	err := Pipeline{Name: "t", Steps: []Step{{Pass: boom}}}.Run(p, ctx)
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is fails through aggregation: %v", err)
	}
}
