package opt

import (
	"fmt"

	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// StrengthReduce replaces induction-variable address arithmetic with
// derived pointers stepped once per iteration — the paper's streaming
// step 3, and the transformation that yields the auto-increment
// addressing of the Motorola 68020 code in Figure 6.
//
// On WM an address of the form (iv << k) + base is free (it fits the
// dual-operation load), so only references whose address needs extra
// in-body helper instructions are reduced.  The scalar backend
// (package scalar) reuses the same analysis with a stricter notion of
// what an addressing mode can absorb.
func StrengthReduce(f *rtl.Func) (bool, error) {
	changed := false
	for round := 0; round < 128; round++ {
		more, err := strengthOnce(f, wmAddrNeedsHelp)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

// StrengthReduceWith runs the pass with a custom "address needs help"
// predicate (used by the scalar backend).
func StrengthReduceWith(f *rtl.Func, needsHelp func(lin linform) bool) (bool, error) {
	changed := false
	for round := 0; round < 128; round++ {
		more, err := strengthOnce(f, needsHelp)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

// wmAddrNeedsHelp: only addresses that required expanding in-loop
// helper definitions cost extra instructions on WM.
func wmAddrNeedsHelp(lin linform) bool { return lin.expanded }

func strengthOnce(f *rtl.Func, needsHelp func(linform) bool) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	for _, l := range g.NaturalLoops() {
		if pre := EnsurePreheader(f, g, l); pre < 0 {
			continue
		} else if l.Preheader == nil {
			return true, nil
		}
		ctx := analyzeLoop(f, g, l)
		if ctx.hasCall {
			continue
		}
		refs, ok := ctx.collectRefs()
		if !ok {
			continue
		}
		// Group reducible references by (iv, cee, region) so that
		// references differing only by a constant offset share one
		// derived pointer and one step per iteration — x[i] and x[i-1]
		// become p@0 and p@-8 off a single pointer.
		groups := map[string][]*memRef{}
		var order []string
		for _, r := range refs {
			if r.unknown || !r.lin.hasIV() || !needsHelp(r.lin) {
				continue
			}
			if alreadyReduced(ctx, f.Code[r.accIdx].Addr) {
				continue // address is a derived pointer (+ offset) already
			}
			ivi, ok := ctx.ivs[r.lin.iv]
			if !ok || ivi.regStep {
				continue
			}
			if !precedes(ctx, r.accIdx, ivi.defIdx) {
				continue // address read after the increment: lin form shifts
			}
			key := r.lin.iv.String() + "/" + fmt.Sprint(r.lin.cee) + "/" + r.lin.baseKey()
			if groups[key] == nil {
				order = append(order, key)
			}
			groups[key] = append(groups[key], r)
		}
		for _, key := range order {
			grp := groups[key]
			if reduceGroup(ctx, grp, ctx.ivs[grp[0].lin.iv]) {
				return true, nil
			}
		}
	}
	return false, nil
}

// alreadyReduced reports whether an address is already in the form a
// derived pointer produces — a stepped induction variable or invariant
// register, plus at most a constant — which every machine's addressing
// modes absorb.  A bare register that is merely an in-loop helper
// (recomputed from the induction variable each iteration) does NOT
// count: that is exactly what this pass eliminates.
func alreadyReduced(ctx *loopCtx, addr rtl.Expr) bool {
	var base rtl.Reg
	switch x := addr.(type) {
	case rtl.RegX:
		base = x.Reg
	case rtl.Bin:
		if x.Op != rtl.Add {
			return false
		}
		rx, lReg := x.L.(rtl.RegX)
		_, rImm := x.R.(rtl.Imm)
		if !lReg || !rImm {
			return false
		}
		base = rx.Reg
	default:
		return false
	}
	if _, isIV := ctx.ivs[base]; isIV {
		return true
	}
	return ctx.invariant(base)
}

// reduceGroup rewrites a group of same-region references through one
// shared derived pointer.
func reduceGroup(ctx *loopCtx, grp []*memRef, ivi ivInfo) bool {
	f := ctx.f
	hdrLabel := ctx.loopLabel()
	if hdrLabel == "" {
		return false
	}
	base := grp[0]
	stride := base.lin.cee * ivi.step
	p := f.NewVirt(rtl.Int)

	// Body: replace every address with p (+ constant delta), then bump
	// the pointer once, right after the induction variable's own
	// increment.
	for _, r := range grp {
		acc := f.Code[r.accIdx]
		delta := r.lin.off - base.lin.off
		if delta == 0 {
			acc.Addr = rtl.RX(p)
		} else {
			acc.Addr = rtl.B(rtl.Add, rtl.RX(p), rtl.I(delta))
		}
	}
	bump := rtl.NewAssign(p, rtl.B(rtl.Add, rtl.RX(p), rtl.I(stride)))
	bump.Note = "derived pointer step"
	f.Insert(ivi.defIdx+1, bump)

	// Preheader: initialize the pointer.
	hdr := f.FindLabel(hdrLabel)
	if hdr < 0 {
		return false
	}
	var seq []*rtl.Instr
	addr := buildLinExpr(f, &seq, base.lin, base.lin.iv, base.lin.off, base.class)
	init := rtl.NewAssign(p, addr)
	init.Note = "derived pointer"
	seq = append(seq, init)
	f.Insert(hdr, seq...)
	return true
}

var _ = cfg.Build
