package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// CSE performs block-local common-subexpression elimination: when an
// assignment recomputes an expression already available in a register,
// it becomes a register copy (which copy propagation then dissolves).
// Expressions containing FIFO reads, memory operands or side effects
// never participate.
func CSE(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	changed := false
	for _, b := range g.Blocks {
		type avail struct {
			expr rtl.Expr
			reg  rtl.Reg
		}
		var exprs []avail
		invalidate := func(r rtl.Reg) {
			out := exprs[:0]
			for _, a := range exprs {
				if a.reg == r || rtl.ExprUsesReg(a.expr, r) {
					continue
				}
				out = append(out, a)
			}
			exprs = out
		}
		invalidatePhysical := func() {
			out := exprs[:0]
			for _, a := range exprs {
				bad := !a.reg.IsVirtual()
				rtl.ExprRegs(a.expr, func(r rtl.Reg) {
					if !r.IsVirtual() {
						bad = true
					}
				})
				if !bad {
					out = append(out, a)
				}
			}
			exprs = out
		}
		for _, i := range b.Instrs(f) {
			if i.Kind == rtl.KCall {
				invalidatePhysical()
				continue
			}
			if i.Kind != rtl.KAssign {
				continue
			}
			d := i.Dst
			if !i.HasSideEffects() && worthCSE(i.Src) {
				matched := false
				for _, a := range exprs {
					if rtl.EqualExpr(a.expr, i.Src) && a.reg != d {
						i.Src = rtl.RX(a.reg)
						changed = true
						matched = true
						break
					}
				}
				if !matched && !d.IsZero() && !d.IsFIFO() {
					invalidate(d)
					exprs = append(exprs, avail{i.Src, d})
					continue
				}
			}
			if !d.IsZero() && !d.IsFIFO() {
				invalidate(d)
			}
		}
	}
	return changed, nil
}

// worthCSE reports whether eliminating a recomputation of e saves work:
// bare registers and immediates are free, so only operator expressions
// and multi-word materializations (symbols, float immediates) qualify.
func worthCSE(e rtl.Expr) bool {
	switch e.(type) {
	case rtl.Bin, rtl.Un, rtl.Cvt, rtl.Sym, rtl.FImm:
		return !rtl.ExprHasMem(e) && !hasFIFORef(e)
	}
	return false
}

func hasFIFORef(e rtl.Expr) bool {
	found := false
	rtl.ExprRegs(e, func(r rtl.Reg) {
		if r.IsFIFO() {
			found = true
		}
	})
	return found
}
