package opt

import (
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

func parseFunc(t *testing.T, body string) *rtl.Func {
	t.Helper()
	p, err := rtl.Parse(".func t\n" + body + "\n.end\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Func("t")
}

func listing(f *rtl.Func) string { return f.Listing() }

func countKind(f *rtl.Func, k rtl.Kind) int {
	n := 0
	for _, i := range f.Code {
		if i.Kind == k {
			n++
		}
	}
	return n
}

// --- Fold ------------------------------------------------------------------

func TestFoldSimplifies(t *testing.T) {
	f := parseFunc(t, `
rv0 := (2 + 3)
rv1 := (rv0 + 0)
halt`)
	if !Fold(f) {
		t.Fatal("Fold reported no change")
	}
	if s := f.Code[0].Src.String(); s != "5" {
		t.Errorf("folded to %s", s)
	}
	if s := f.Code[1].Src.String(); s != "rv0" {
		t.Errorf("identity not folded: %s", s)
	}
}

func TestFoldKeepsCompareTop(t *testing.T) {
	f := parseFunc(t, `
r31 := (2 < r5)
jumpTr L1
L1:
halt`)
	Fold(f)
	if !f.Code[0].IsCompare() {
		t.Errorf("compare destroyed: %s", f.Code[0])
	}
}

func TestFoldConstantBranch(t *testing.T) {
	f := parseFunc(t, `
r31 := (2 < 3)
jumpTr L1
rv0 := 99
L1:
halt`)
	Fold(f)
	if countKind(f, rtl.KCondJump) != 0 {
		t.Errorf("constant branch survived:\n%s", listing(f))
	}
	if countKind(f, rtl.KJump) != 1 {
		t.Errorf("taken branch should become jump:\n%s", listing(f))
	}
	// Not-taken case.
	f2 := parseFunc(t, `
r31 := (5 < 3)
jumpTr L1
rv0 := 99
L1:
halt`)
	Fold(f2)
	if countKind(f2, rtl.KCondJump) != 0 || countKind(f2, rtl.KJump) != 0 {
		t.Errorf("not-taken branch should vanish:\n%s", listing(f2))
	}
}

// --- CopyProp / DeadCode -----------------------------------------------------

func TestCopyPropLocal(t *testing.T) {
	f := parseFunc(t, `
rv0 := 5
rv1 := rv0
rv2 := (rv1 + rv0)
halt`)
	chk(CopyProp(f))
	Fold(f)
	if s := f.Code[2].Src.String(); s != "10" {
		t.Errorf("propagation failed: %s\n%s", s, listing(f))
	}
}

func TestCopyPropKillsOnRedefine(t *testing.T) {
	f := parseFunc(t, `
r10 := r11
r11 := 7
r12 := r10
halt`)
	chk(CopyProp(f))
	if s := f.Code[2].Src.String(); s == "7" || s == "r11" {
		t.Errorf("stale copy propagated: %s", s)
	}
}

func TestCopyPropNotThroughFIFO(t *testing.T) {
	f := parseFunc(t, `
rv0 := r0
rv1 := rv0
halt`)
	chk(CopyProp(f))
	if s := f.Code[1].Src.String(); s == "r0" {
		t.Errorf("FIFO read duplicated: %s\n%s", s, listing(f))
	}
}

func TestDeadCodeRemoves(t *testing.T) {
	f := parseFunc(t, `
rv0 := 5
rv1 := 6
r2 := rv1
ret`)
	chk(DeadCode(f))
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && i.Dst.IsVirtual() && i.Dst.N == rtl.VirtualBase {
			t.Errorf("dead assign survived:\n%s", listing(f))
		}
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	f := parseFunc(t, `
r31 := (r5 < r6)
l32r r0, r5
f0 := f10
puti r5
halt`)
	n := len(f.Code)
	chk(DeadCode(f))
	if len(f.Code) != n {
		t.Errorf("side-effecting instruction removed:\n%s", listing(f))
	}
}

// --- CSE ---------------------------------------------------------------------

func TestCSE(t *testing.T) {
	f := parseFunc(t, `
rv0 := ((r5 << 3) + r6)
rv1 := ((r5 << 3) + r6)
r2 := (rv0 + rv1)
ret`)
	if !chk(CSE(f)) {
		t.Fatal("CSE found nothing")
	}
	if s := f.Code[1].Src.String(); s != "rv0" {
		t.Errorf("second compute = %s", s)
	}
}

func TestCSEKillsOnRedefine(t *testing.T) {
	f := parseFunc(t, `
rv0 := (r5 + r6)
r5 := 1
rv1 := (r5 + r6)
r2 := (rv0 + rv1)
ret`)
	chk(CSE(f))
	if s := f.Code[2].Src.String(); s == "rv0" {
		t.Errorf("CSE across redefinition:\n%s", listing(f))
	}
}

func TestCSESkipsFIFO(t *testing.T) {
	f := parseFunc(t, `
rv0 := (r0 + 1)
rv1 := (r0 + 1)
r2 := (rv0 + rv1)
ret`)
	chk(CSE(f))
	if s := f.Code[1].Src.String(); s == "rv0" {
		t.Errorf("FIFO expr CSEd:\n%s", listing(f))
	}
}

// --- LICM --------------------------------------------------------------------

func TestLICMHoistsInvariant(t *testing.T) {
	f := parseFunc(t, `
rv0 := 0
L1:
rv1 := _x
rv2 := (rv1 + 8)
rv0 := (rv0 + 1)
r31 := (rv0 < 10)
jumpTr L1
halt`)
	if !chk(LICM(f)) {
		t.Fatalf("LICM hoisted nothing:\n%s", listing(f))
	}
	// Both rv1 and rv2 should now precede the loop header label.
	hdr := f.FindLabel("L1")
	seenSym := false
	for n := 0; n < hdr; n++ {
		if i := f.Code[n]; i.Kind == rtl.KAssign {
			if _, ok := i.Src.(rtl.Sym); ok {
				seenSym = true
			}
		}
	}
	if !seenSym {
		t.Errorf("symbol materialization not hoisted:\n%s", listing(f))
	}
}

func TestLICMKeepsVariant(t *testing.T) {
	f := parseFunc(t, `
rv0 := 0
L1:
rv1 := (rv0 << 3)
rv0 := (rv0 + 1)
r31 := (rv0 < 10)
jumpTr L1
halt`)
	chk(LICM(f))
	hdr := f.FindLabel("L1")
	for n := hdr + 1; n < len(f.Code); n++ {
		if i := f.Code[n]; i.Kind == rtl.KAssign && strings.Contains(i.Src.String(), "<<") {
			return // still in loop: good
		}
	}
	t.Errorf("variant expression hoisted:\n%s", listing(f))
}

func TestLICMSkipsDivision(t *testing.T) {
	f := parseFunc(t, `
rv0 := 0
L1:
rv1 := (r5 / r6)
rv0 := (rv0 + 1)
r31 := (rv0 < 10)
jumpTr L1
halt`)
	chk(LICM(f))
	hdr := f.FindLabel("L1")
	for n := 0; n < hdr; n++ {
		if i := f.Code[n]; i.Kind == rtl.KAssign && strings.Contains(i.Src.String(), "/") {
			t.Errorf("trapping division hoisted:\n%s", listing(f))
		}
	}
}

// --- CleanBranches -------------------------------------------------------------

func TestCleanBranchesJumpToNext(t *testing.T) {
	f := parseFunc(t, `
jump L1
L1:
halt`)
	CleanBranches(f)
	if countKind(f, rtl.KJump) != 0 {
		t.Errorf("jump-to-next survived:\n%s", listing(f))
	}
}

func TestCleanBranchesThreading(t *testing.T) {
	f := parseFunc(t, `
r31 := (r5 < r6)
jumpTr L1
halt
L1:
jump L2
rv0 := 1
L2:
halt`)
	CleanBranches(f)
	for _, i := range f.Code {
		if i.Kind == rtl.KCondJump && i.Target != "L2" {
			t.Errorf("jump not threaded: %s\n%s", i, listing(f))
		}
	}
}

func TestCleanBranchesUnreachable(t *testing.T) {
	f := parseFunc(t, `
halt
rv0 := 1
rv1 := 2
L1:
halt`)
	CleanBranches(f)
	if len(f.Code) > 2 {
		t.Errorf("unreachable code survived:\n%s", listing(f))
	}
}

// --- Combine --------------------------------------------------------------------

func TestCombineDualOp(t *testing.T) {
	f := parseFunc(t, `
rv0 := (r5 << 3)
rv1 := (rv0 + r6)
r2 := rv1
ret`)
	if !chk(Combine(f)) {
		t.Fatalf("Combine did nothing:\n%s", listing(f))
	}
	found := false
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && i.Src.String() == "((r5 << 3) + r6)" {
			found = true
		}
	}
	if !found {
		t.Errorf("dual-op not formed:\n%s", listing(f))
	}
}

func TestCombineRespectsTwoOpLimit(t *testing.T) {
	f := parseFunc(t, `
rv0 := ((r5 << 3) + r6)
rv1 := (rv0 + r7)
r2 := rv1
ret`)
	chk(Combine(f))
	for _, i := range f.Code {
		if i.Kind != rtl.KAssign {
			continue
		}
		if rtl.ExprSize(i.Src) > 2 {
			t.Errorf("illegal instruction formed: %s", i)
		}
	}
}

func TestCombineMultiUseBlocked(t *testing.T) {
	f := parseFunc(t, `
rv0 := (r5 + r6)
rv1 := (rv0 + 1)
rv2 := (rv0 + 2)
r2 := (rv1 + rv2)
ret`)
	before := len(f.Code)
	chk(Combine(f))
	// rv0 has two uses: it must survive.
	if len(f.Code) < before-1 {
		t.Errorf("multi-use producer merged:\n%s", listing(f))
	}
	stillThere := false
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && i.Src.String() == "(r5 + r6)" {
			stillThere = true
		}
	}
	if !stillThere {
		t.Errorf("producer deleted despite two uses:\n%s", listing(f))
	}
}

func TestCombineFIFOForward(t *testing.T) {
	f := parseFunc(t, `
l64f f0, r5
fv0 := f0
fv1 := (fv0 * f10)
f0 := fv1
s64f f0, r6
ret`)
	chk(Combine(f))
	// fv0 := f0 should fold into the multiply.
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && strings.Contains(i.Src.String(), "(f0 * f10)") {
			return
		}
	}
	t.Errorf("FIFO read not forwarded:\n%s", listing(f))
}

func TestCombineFIFOOrderPreserved(t *testing.T) {
	// Two dequeues used in source order: both may forward, yielding
	// (f0 - f0), where the first read must be the older entry.
	f := parseFunc(t, `
l64f f0, r5
l64f f0, r6
fv0 := f0
fv1 := f0
fv2 := (fv0 - fv1)
f0 := fv2
s64f f0, r7
ret`)
	chk(Combine(f))
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && strings.Contains(i.Src.String(), "(f0 - f0)") {
			return
		}
	}
	t.Errorf("double forward failed:\n%s", listing(f))
}

func TestCombineFIFOSwappedOrderBlocked(t *testing.T) {
	// The dequeues are used in REVERSED order: merging both would
	// swap the queue entries, so at most one may forward.
	f := parseFunc(t, `
l64f f0, r5
l64f f0, r6
fv0 := f0
fv1 := f0
fv2 := (fv1 - fv0)
f0 := fv2
s64f f0, r7
ret`)
	chk(Combine(f))
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && strings.Contains(i.Src.String(), "(f0 - f0)") {
			t.Errorf("queue order violated:\n%s", listing(f))
		}
	}
}

// --- Legalize --------------------------------------------------------------------

func TestLegalizeSplitsBigExprs(t *testing.T) {
	f := parseFunc(t, `
rv0 := (((r5 + r6) + r7) + r8)
ret`)
	if err := Legalize(f); err != nil {
		t.Fatal(err)
	}
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && rtl.ExprSize(i.Src) > 2 {
			t.Errorf("oversized instruction: %s", i)
		}
	}
}

func TestLegalizeExtractsNestedSym(t *testing.T) {
	f := parseFunc(t, `
rv0 := (_x + 8)
ret`)
	// _x + 8 folds into _x+8 (a single Sym), which is legal as a whole
	// source.
	Fold(f)
	if err := Legalize(f); err != nil {
		t.Fatal(err)
	}
	for _, i := range f.Code {
		if i.Kind != rtl.KAssign {
			continue
		}
		if b, ok := i.Src.(rtl.Bin); ok {
			bad := false
			rtl.WalkExpr(b, func(e rtl.Expr) {
				if _, isSym := e.(rtl.Sym); isSym {
					bad = true
				}
			})
			if bad {
				t.Errorf("nested symbol survives: %s", i)
			}
		}
	}
}

func TestLegalizeRejectsMem(t *testing.T) {
	f := parseFunc(t, `
rv0 := M4r[(r5 + 4)]
ret`)
	if err := Legalize(f); err == nil {
		t.Fatal("memory operand accepted for WM")
	}
}

// --- RegAlloc --------------------------------------------------------------------

func TestRegAllocAssignsAll(t *testing.T) {
	f := parseFunc(t, `
rv0 := 1
rv1 := 2
rv2 := (rv0 + rv1)
r2 := rv2
ret`)
	if err := RegAlloc(f); err != nil {
		t.Fatal(err)
	}
	for _, i := range f.Code {
		if d, ok := i.Def(); ok && d.IsVirtual() {
			t.Errorf("virtual survived: %s", i)
		}
		for _, u := range i.Uses(nil) {
			if u.IsVirtual() {
				t.Errorf("virtual use survived: %s", i)
			}
		}
	}
}

func TestRegAllocReusesRegisters(t *testing.T) {
	// 100 sequential short-lived temporaries must fit the pool.
	var sb strings.Builder
	for k := 0; k < 100; k++ {
		sb.WriteString("rv" + itoa(k) + " := " + itoa(k) + "\n")
		sb.WriteString("r2 := rv" + itoa(k) + "\n")
	}
	sb.WriteString("ret")
	f := parseFunc(t, sb.String())
	if err := RegAlloc(f); err != nil {
		t.Fatal(err)
	}
}

func TestRegAllocSpillsAcrossCall(t *testing.T) {
	f := parseFunc(t, `
rv0 := 42
call foo
r2 := rv0
ret`)
	if err := RegAlloc(f); err != nil {
		t.Fatal(err)
	}
	// rv0 must have been spilled: expect a store before the call and a
	// load after.
	if countKind(f, rtl.KStore) == 0 || countKind(f, rtl.KLoad) == 0 {
		t.Errorf("no spill generated:\n%s", listing(f))
	}
	if f.Frame < 8 {
		t.Errorf("frame not grown: %d", f.Frame)
	}
	// And the spill FIFO is the secondary one.
	for _, i := range f.Code {
		if i.Kind == rtl.KStore || i.Kind == rtl.KLoad {
			if i.FIFO.N != rtl.FIFO1 {
				t.Errorf("spill uses %s, want FIFO1", i.FIFO)
			}
		}
	}
}

func TestRegAllocHighPressureSpills(t *testing.T) {
	// More simultaneously-live values than registers.
	var sb strings.Builder
	n := 40
	for k := 0; k < n; k++ {
		sb.WriteString("rv" + itoa(k) + " := " + itoa(k) + "\n")
	}
	sb.WriteString("r2 := rv0\n")
	for k := 1; k < n; k++ {
		sb.WriteString("r2 := (r2 + rv" + itoa(k) + ")\n")
	}
	sb.WriteString("ret")
	f := parseFunc(t, sb.String())
	if err := RegAlloc(f); err != nil {
		t.Fatal(err)
	}
	for _, i := range f.Code {
		if d, ok := i.Def(); ok && d.IsVirtual() {
			t.Fatalf("virtual survived after spill: %s", i)
		}
	}
}

// --- Recurrences ------------------------------------------------------------------

// livermoreRTL is the naive shape of the 5th Livermore loop: x[i] =
// z[i] * (y[i] - x[i-1]), with addresses hoisted (rv1=_x, rv2=_z,
// rv3=_y) and i in rv0.
const livermoreRTL = `
rv0 := 2
rv1 := _x
rv2 := _z
rv3 := _y
LP:
L1:
l64f f0, ((rv0 << 3) + rv2)
fv0 := f0
l64f f0, ((rv0 << 3) + rv3)
fv1 := f0
rv4 := ((rv0 - 1) << 3)
l64f f0, (rv4 + rv1)
fv2 := f0
fv3 := ((fv1 - fv2) * fv0)
f0 := fv3
s64f f0, ((rv0 << 3) + rv1)
rv0 := (rv0 + 1)
r31 := (rv0 < r5)
jumpTr L1
halt`

func TestRecurrenceDetection(t *testing.T) {
	f := parseFunc(t, livermoreRTL)
	if !chk(Recurrences(f, 4)) {
		t.Fatalf("recurrence not detected:\n%s", listing(f))
	}
	// One load must be gone: x[i-1].
	if n := countKind(f, rtl.KLoad); n != 3 { // 2 in loop + 1 preload
		t.Errorf("loads = %d, want 3 (two in loop + one preload):\n%s", n, listing(f))
	}
	// A carry copy must exist after the loop header.
	hdr := f.FindLabel("L1")
	carryFound := false
	for n := hdr + 1; n < hdr+3 && n < len(f.Code); n++ {
		i := f.Code[n]
		if i.Kind == rtl.KAssign {
			if _, isReg := i.Src.(rtl.RegX); isReg && i.Dst.Class == rtl.Float {
				carryFound = true
			}
		}
	}
	if !carryFound {
		t.Errorf("carry copy missing at loop top:\n%s", listing(f))
	}
}

func TestRecurrenceDegreeTwo(t *testing.T) {
	// x[i] = x[i-2] + 1.0
	f := parseFunc(t, `
rv0 := 2
rv1 := _x
fv9 := 1f
LP:
L1:
rv4 := ((rv0 - 2) << 3)
l64f f0, (rv4 + rv1)
fv2 := f0
fv3 := (fv2 + fv9)
f0 := fv3
s64f f0, ((rv0 << 3) + rv1)
rv0 := (rv0 + 1)
r31 := (rv0 < r5)
jumpTr L1
halt`)
	if !chk(Recurrences(f, 4)) {
		t.Fatalf("degree-2 recurrence not detected:\n%s", listing(f))
	}
	// Two preloads, no loads left in loop.
	if n := countKind(f, rtl.KLoad); n != 2 {
		t.Errorf("loads = %d, want 2 preloads:\n%s", n, listing(f))
	}
}

func TestRecurrenceRespectsMaxDegree(t *testing.T) {
	f := parseFunc(t, `
rv0 := 9
rv1 := _x
LP:
L1:
rv4 := ((rv0 - 9) << 3)
l64f f0, (rv4 + rv1)
fv2 := f0
f0 := fv2
s64f f0, ((rv0 << 3) + rv1)
rv0 := (rv0 + 1)
r31 := (rv0 < r5)
jumpTr L1
halt`)
	if chk(Recurrences(f, 4)) {
		t.Errorf("degree-9 recurrence transformed despite maxDegree=4:\n%s", listing(f))
	}
}

func TestNoRecurrenceOnDisjointArrays(t *testing.T) {
	// y[i] = x[i]: different partitions, no recurrence.
	f := parseFunc(t, `
rv0 := 0
rv1 := _x
rv2 := _y
LP:
L1:
l64f f0, ((rv0 << 3) + rv1)
fv0 := f0
f0 := fv0
s64f f0, ((rv0 << 3) + rv2)
rv0 := (rv0 + 1)
r31 := (rv0 < r5)
jumpTr L1
halt`)
	if chk(Recurrences(f, 4)) {
		t.Errorf("phantom recurrence found:\n%s", listing(f))
	}
}

func TestNoRecurrenceForwardRead(t *testing.T) {
	// x[i] = x[i+1]: the read is ahead of the write, not a recurrence.
	f := parseFunc(t, `
rv0 := 0
rv1 := _x
LP:
L1:
rv4 := ((rv0 + 1) << 3)
l64f f0, (rv4 + rv1)
fv2 := f0
f0 := fv2
s64f f0, ((rv0 << 3) + rv1)
rv0 := (rv0 + 1)
r31 := (rv0 < r5)
jumpTr L1
halt`)
	if chk(Recurrences(f, 4)) {
		t.Errorf("anti-dependence treated as recurrence:\n%s", listing(f))
	}
}

// --- Streams --------------------------------------------------------------------

const copyLoopRTL = `
rv0 := 0
rv1 := _x
rv2 := _y
LP:
L1:
l64f f0, ((rv0 << 3) + rv1)
fv0 := f0
f0 := fv0
s64f f0, ((rv0 << 3) + rv2)
rv0 := (rv0 + 1)
r31 := (rv0 < 100)
jumpTr L1
halt`

func TestStreamCopyLoop(t *testing.T) {
	f := parseFunc(t, copyLoopRTL)
	if !chk(Streams(f, 4)) {
		t.Fatalf("copy loop not streamed:\n%s", listing(f))
	}
	if countKind(f, rtl.KStreamIn) != 1 || countKind(f, rtl.KStreamOut) != 1 {
		t.Errorf("stream instructions missing:\n%s", listing(f))
	}
	if countKind(f, rtl.KLoad) != 0 || countKind(f, rtl.KStore) != 0 {
		t.Errorf("scalar accesses survived:\n%s", listing(f))
	}
	if countKind(f, rtl.KJumpNotDone) != 1 {
		t.Errorf("loop test not replaced:\n%s", listing(f))
	}
	if countKind(f, rtl.KCondJump) != 0 {
		t.Errorf("old conditional jump survived:\n%s", listing(f))
	}
}

func TestStreamRefusesMemoryRecurrence(t *testing.T) {
	// x[i] = x[i-1] without recurrence optimization: paper step 2a says
	// do not stream.
	f := parseFunc(t, `
rv0 := 2
rv1 := _x
LP:
L1:
rv4 := ((rv0 - 1) << 3)
l64f f0, (rv4 + rv1)
fv2 := f0
f0 := fv2
s64f f0, ((rv0 << 3) + rv1)
rv0 := (rv0 + 1)
r31 := (rv0 < 100)
jumpTr L1
halt`)
	chk(Streams(f, 4))
	if countKind(f, rtl.KStreamIn) != 0 || countKind(f, rtl.KStreamOut) != 0 {
		t.Errorf("memory recurrence streamed:\n%s", listing(f))
	}
}

func TestStreamMinTrip(t *testing.T) {
	f := parseFunc(t, strings.Replace(copyLoopRTL, "(rv0 < 100)", "(rv0 < 3)", 1))
	chk(Streams(f, 4))
	if countKind(f, rtl.KStreamIn) != 0 {
		t.Errorf("three-iteration loop streamed (paper step 1):\n%s", listing(f))
	}
	f2 := parseFunc(t, strings.Replace(copyLoopRTL, "(rv0 < 100)", "(rv0 < 3)", 1))
	chk(Streams(f2, 1))
	if countKind(f2, rtl.KStreamIn) != 1 {
		t.Errorf("minTrip=1 should stream:\n%s", listing(f2))
	}
}

func TestStreamRuntimeCount(t *testing.T) {
	f := parseFunc(t, strings.Replace(copyLoopRTL, "(rv0 < 100)", "(rv0 < r5)", 1))
	if !chk(Streams(f, 4)) {
		t.Fatalf("runtime-count loop not streamed:\n%s", listing(f))
	}
	// The stream count must be computed from r5.
	found := false
	for _, i := range f.Code {
		if i.Kind == rtl.KStreamIn {
			if _, isImm := i.Count.(rtl.Imm); !isImm {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("stream count not runtime:\n%s", listing(f))
	}
}

func TestStreamSkipsCallLoops(t *testing.T) {
	f := parseFunc(t, strings.Replace(copyLoopRTL, "fv0 := f0", "fv0 := f0\ncall foo", 1))
	chk(Streams(f, 4))
	if countKind(f, rtl.KStreamIn) != 0 {
		t.Errorf("loop with call streamed:\n%s", listing(f))
	}
}

func TestStreamConditionalRefNotStreamed(t *testing.T) {
	// The store only happens for some iterations: paper step 2c.
	f := parseFunc(t, `
rv0 := 0
rv1 := _x
LP:
L1:
r31 := (rv0 < 50)
jumpFr L2
f0 := f10
s64f f0, ((rv0 << 3) + rv1)
L2:
rv0 := (rv0 + 1)
r31 := (rv0 < 100)
jumpTr L1
halt`)
	chk(Streams(f, 4))
	if countKind(f, rtl.KStreamOut) != 0 {
		t.Errorf("conditional reference streamed:\n%s", listing(f))
	}
}

func TestDeadIVRemoved(t *testing.T) {
	f := parseFunc(t, copyLoopRTL)
	chk(Streams(f, 4))
	chk(DeadIVs(f))
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign {
			if b, ok := i.Src.(rtl.Bin); ok {
				if rx, ok := b.L.(rtl.RegX); ok && rx.Reg == i.Dst && b.Op == rtl.Add {
					t.Errorf("dead induction variable survived: %s\n%s", i, listing(f))
				}
			}
		}
	}
}

// --- StrengthReduce ---------------------------------------------------------------

func TestStrengthReduceHelperAddress(t *testing.T) {
	// Address needs a helper instruction in the body: (rv0-1)<<3 + base.
	f := parseFunc(t, `
rv0 := 1
rv1 := _x
LP:
L1:
rv4 := ((rv0 - 1) << 3)
l64f f0, (rv4 + rv1)
fv2 := f0
r31 := (rv0 < 100)
rv0 := (rv0 + 1)
jumpTr L1
halt`)
	// Note: compare precedes increment here, so trip analysis is not
	// involved; strength reduction still applies.
	if !chk(StrengthReduce(f)) {
		t.Fatalf("strength reduction did nothing:\n%s", listing(f))
	}
	found := false
	for _, i := range f.Code {
		if i.Kind == rtl.KLoad {
			if _, isReg := i.Addr.(rtl.RegX); isReg {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("address not reduced to pointer:\n%s", listing(f))
	}
}

func TestStrengthReduceSkipsFreeAddress(t *testing.T) {
	// (rv0 << 3) + rv1 fits WM's dual-op load: no gain.
	f := parseFunc(t, `
rv0 := 0
rv1 := _x
LP:
L1:
l64f f0, ((rv0 << 3) + rv1)
fv2 := f0
rv0 := (rv0 + 1)
r31 := (rv0 < 100)
jumpTr L1
halt`)
	if chk(StrengthReduce(f)) {
		t.Errorf("free address reduced:\n%s", listing(f))
	}
}
