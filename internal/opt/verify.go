package opt

import (
	"fmt"

	"wmstream/internal/rtl"
)

// verifyAfter runs the RTL invariant checker at a pass boundary (the
// engine calls it after every pass invocation when ctx.Verify is set).
// Virtual registers are legal until register assignment has run.
func verifyAfter(p Pass, f *rtl.Func, ctx *Context) error {
	if err := rtl.CheckFunc(f, !ctx.allocated); err != nil {
		return fmt.Errorf("invariant violated after %s: %w\n%s", p.Name(), err, f.Listing())
	}
	return nil
}
