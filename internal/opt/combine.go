package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// Combine performs instruction combining for WM's dual-operation
// instruction format, merging a single-use producer into its consumer:
//
//	t := a op1 b          =>    u := (a op1 b) op2 c
//	u := t op2 c
//
// and FIFO-read forwarding, which folds a dequeue into its only
// consumer (giving the paper's "f0 := (f0-f0)*f20" shapes):
//
//	t := f0               =>    u := (f0 - x) * y
//	u := (t - x) * y
//
// Both transformations respect the constraints that make them legal on
// the hardware: at most two operations per instruction, producer and
// consumer in the same basic block, no intervening redefinition of the
// producer's operands, the producer's destination dead afterwards, and
// — for FIFO forwarding — no intervening read of the same FIFO (queue
// order must be preserved).
func Combine(f *rtl.Func) (bool, error) {
	changed := false
	for round := 0; round < 5000; round++ {
		more, err := combineOnce(f)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func combineOnce(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Liveness()
	for _, b := range g.Blocks {
		if combineBlock(f, g, b) {
			return true, nil
		}
	}
	return false, nil
}

func combineBlock(f *rtl.Func, g *cfg.Graph, b *cfg.Block) bool {
	// liveAfter[n] = registers live after instruction n.
	liveAfter := make(map[int]cfg.RegSet, b.End-b.Start)
	g.LiveAtEach(b, func(idx int, i *rtl.Instr, after cfg.RegSet) {
		liveAfter[idx] = after.Clone()
	})
	// Scan backwards: merging the latest producer first lets runs of
	// consecutive dequeues fold into one consumer in queue order.
	for n := b.End - 1; n >= b.Start; n-- {
		prod := f.Code[n]
		if prod.Kind != rtl.KAssign || prod.IsCompare() {
			continue
		}
		d := prod.Dst
		if d.IsZero() || d.IsFIFO() {
			continue
		}
		isFIFOFwd := prod.HasFIFORead()
		if isFIFOFwd {
			// Only forward a bare dequeue t := f0.
			if rx, ok := prod.Src.(rtl.RegX); !ok || !rx.Reg.IsFIFO() {
				continue
			}
		}
		// Find the unique consumer within the block.
		consumerIdx := -1
		uses := 0
		for k := n + 1; k < b.End; k++ {
			c := f.Code[k]
			for _, u := range c.Uses(nil) {
				if u == d {
					uses++
					if consumerIdx == -1 {
						consumerIdx = k
					}
				}
			}
			if redefines(c, d) {
				break
			}
		}
		if consumerIdx == -1 || uses != 1 {
			continue
		}
		if liveAfter[consumerIdx].Has(d) {
			continue // value needed later (another block or after redef)
		}
		cons := f.Code[consumerIdx]
		if !mergeAllowed(f, b, n, consumerIdx, prod, cons, isFIFOFwd) {
			continue
		}
		// Substitute and check the result stays a legal dual-op RTL.
		merged := substituteInstr(cons, d, prod.Src)
		if !legalAfterMerge(merged) {
			continue
		}
		f.Code[consumerIdx] = merged
		f.Remove(n)
		return true
	}
	return false
}

func redefines(i *rtl.Instr, r rtl.Reg) bool {
	if d, ok := i.Def(); ok && d == r {
		return true
	}
	if i.Kind == rtl.KCall && !r.IsVirtual() {
		return true
	}
	return false
}

// mergeAllowed checks the path between producer and consumer.
func mergeAllowed(f *rtl.Func, b *cfg.Block, prodIdx, consIdx int, prod, cons *rtl.Instr, fifoFwd bool) bool {
	var fifo rtl.Reg
	if fifoFwd {
		fifo = prod.Src.(rtl.RegX).Reg
	}
	// Operands of the producer must not be redefined in between, and —
	// for FIFO forwarding — nothing in between may read the same FIFO.
	for k := prodIdx + 1; k < consIdx; k++ {
		mid := f.Code[k]
		if mid.Kind == rtl.KCall {
			return false
		}
		bad := false
		rtl.ExprRegs(prod.Src, func(r rtl.Reg) {
			if !r.IsFIFO() && redefines(mid, r) {
				bad = true
			}
		})
		if bad {
			return false
		}
		if fifoFwd {
			for _, u := range mid.Uses(nil) {
				if u == fifo {
					return false
				}
			}
		}
	}
	// If the consumer already reads the same FIFO directly, the merge
	// is only legal when the forwarded read lands *before* every
	// existing read in the consumer's left-to-right evaluation order:
	// the producer's dequeue is older, so it must stay first.  This is
	// what allows the paper's "f0 := (f0 - f0) * f20" shape, where the
	// first f0 is the older (y[i]) entry and the second the newer
	// (x[i-1]) one.
	if fifoFwd {
		order := evalOrderReads(cons)
		prodPos, firstFifo := -1, -1
		for k, r := range order {
			if r == prod.Dst && prodPos == -1 {
				prodPos = k
			}
			if r == fifo && firstFifo == -1 {
				firstFifo = k
			}
		}
		if firstFifo != -1 && (prodPos == -1 || prodPos > firstFifo) {
			return false
		}
	}
	// Never merge into stream bases/counts (the IFU reads those).
	if cons.Kind != rtl.KAssign && cons.Kind != rtl.KLoad && cons.Kind != rtl.KStore {
		return false
	}
	return true
}

// evalOrderReads returns the registers an instruction reads, in the
// order the hardware's operand fetch dequeues them (left to right
// through each operand expression).
func evalOrderReads(i *rtl.Instr) []rtl.Reg {
	var order []rtl.Reg
	i.EachUseExpr(func(e rtl.Expr) {
		rtl.ExprRegs(e, func(r rtl.Reg) { order = append(order, r) })
	})
	return order
}

func substituteInstr(i *rtl.Instr, from rtl.Reg, to rtl.Expr) *rtl.Instr {
	c := i.Clone()
	c.MapExprs(func(e rtl.Expr) rtl.Expr { return rtl.SubstReg(e, from, to) })
	return c
}

// legalAfterMerge enforces the WM instruction format on the merged
// result: at most two operator nodes, at most three register operands,
// and no multi-word materializations (symbols, float immediates) nested
// inside an expression.
func legalAfterMerge(i *rtl.Instr) bool {
	ok := true
	check := func(e rtl.Expr) {
		if rtl.ExprSize(e) > 2 {
			ok = false
		}
		regs := 0
		rtl.ExprRegs(e, func(rtl.Reg) { regs++ })
		if regs > 3 {
			ok = false
		}
		rtl.WalkExpr(e, func(x rtl.Expr) {
			switch x.(type) {
			case rtl.Sym:
				if !rtl.EqualExpr(x, e) {
					ok = false
				}
			case rtl.FImm:
				if f := x.(rtl.FImm); f.V != 0 && !rtl.EqualExpr(x, e) {
					ok = false
				}
			case rtl.Cvt:
				// Conversions synchronize the units; keep them alone.
				if !rtl.EqualExpr(x, e) {
					ok = false
				}
			}
		})
	}
	i.EachUseExpr(check)
	return ok
}
