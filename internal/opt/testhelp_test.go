package opt

import "errors"

// chk unwraps a (changed, error) transformation result in tests.  The
// error path (a branch to an unknown label) has dedicated tests; any
// error on the well-formed fixtures here is a test bug.
func chk(changed bool, err error) bool {
	if err != nil {
		panic(err)
	}
	return changed
}

// errTest is a sentinel failure for fault-containment tests.
var errTest = errors.New("injected failure")
