package opt

import (
	"sort"

	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// Streams implements the paper's streaming optimization algorithm (its
// Figure 5 -> Figure 7 transformation):
//
//	Step 1    determine the loop's iteration count; too few
//	          iterations (MinTrip) means streaming costs more than it
//	          saves;
//	Step 2    for every safe partition whose memory recurrences have
//	          been eliminated, verify each reference runs on every
//	          iteration with a fixed stride, allocate a FIFO, emit
//	          sin/sout in the preheader, and rewrite the body's
//	          loads/stores into FIFO register references;
//	Step 2i   replace the loop test with jump-on-stream-not-exhausted;
//	Step 2j   the induction variable dies and dead-code elimination
//	          (rerun by the driver) removes its increment;
//	Step 3    strength reduction of whatever addressing remains is a
//	          separate pass (StrengthReduce).
//
// Only innermost loops are streamed.  Returns whether anything changed.
func Streams(f *rtl.Func, minTrip int64) (bool, error) {
	changed := false
	for round := 0; round < 128; round++ {
		more, err := streamOnce(f, minTrip)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func streamOnce(f *rtl.Func, minTrip int64) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	loops := g.NaturalLoops()
	// Innermost only: loops that are no other loop's parent.
	isParent := map[*cfg.Loop]bool{}
	for _, l := range loops {
		if l.Parent != nil {
			isParent[l.Parent] = true
		}
	}
	for _, l := range loops {
		if isParent[l] {
			continue
		}
		if pre := EnsurePreheader(f, g, l); pre < 0 {
			continue
		} else if l.Preheader == nil {
			return true, nil // structural change
		}
		if streamLoop(f, g, l, minTrip) {
			return true, nil
		}
	}
	return false, nil
}

// DeadIVs implements the paper's step 2j: after streaming replaces the
// loop test and the address computations, an induction variable whose
// only remaining use is its own increment is dead, but ordinary
// liveness cannot see through the self-reference cycle.  This pass
// deletes such increments (when the variable is also dead at every
// loop exit).
func DeadIVs(f *rtl.Func) (bool, error) {
	changed := false
	for round := 0; round < 128; round++ {
		more, err := deadIVOnce(f)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func deadIVOnce(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	g.Liveness()
	for _, l := range g.NaturalLoops() {
		ctx := analyzeLoop(f, g, l)
		for iv, ivi := range ctx.ivs {
			// Uses of iv inside the loop, excluding the increment's
			// own operand.
			uses := 0
			for _, b := range l.BlockList() {
				for n := b.Start; n < b.End; n++ {
					if n == ivi.defIdx {
						continue
					}
					for _, u := range f.Code[n].Uses(nil) {
						if u == iv {
							uses++
						}
					}
				}
			}
			if uses > 0 {
				continue
			}
			liveOut := false
			for _, t := range l.ExitTargets {
				if t.LiveIn.Has(iv) {
					liveOut = true
				}
			}
			if liveOut {
				continue
			}
			f.Remove(ivi.defIdx)
			return true, nil
		}
	}
	return false, nil
}

// tripInfo describes the loop's iteration count.
type tripInfo struct {
	iv      rtl.Reg
	step    int64   // constant step, 0 when regStep
	stepReg rtl.Reg // register step (assumed positive)
	regStep bool
	stepX   rtl.Expr // the step as an expression
	limit   rtl.Expr // invariant register or constant
	op      rtl.Op   // continue-condition: iv' op limit (iv' = post-increment value)
	cmpIdx  int      // latch compare instruction
	jmpIdx  int      // latch conditional jump
	// constCount >= 0 when the count is known at compile time.
	constCount int64
	known      bool
}

// analyzeTrip recognizes the bottom-tested loop shape the code
// expander emits: a latch block ending in "zero := (iv OP limit);
// jump{T,F} header" where iv is a basic induction variable read after
// its increment.
func analyzeTrip(ctx *loopCtx) *tripInfo {
	f := ctx.f
	if len(ctx.loop.Latches) != 1 {
		return nil
	}
	latch := ctx.loop.Latches[0]
	jmpIdx := latch.End - 1
	jmp := f.Code[jmpIdx]
	if jmp.Kind != rtl.KCondJump {
		return nil
	}
	cmpIdx := jmpIdx - 1
	if cmpIdx < latch.Start {
		return nil
	}
	cmp := f.Code[cmpIdx]
	if !cmp.IsCompare() {
		return nil
	}
	bin := cmp.Src.(rtl.Bin)
	op := bin.Op
	if !jmp.Sense {
		op = op.Negate()
	}
	// One side must be exactly an induction variable, the other
	// invariant.
	var iv rtl.Reg
	var limit rtl.Expr
	if lx, ok := bin.L.(rtl.RegX); ok {
		if _, isIV := ctx.ivs[lx.Reg]; isIV && ctx.operandInvariant(bin.R) {
			iv, limit = lx.Reg, bin.R
		}
	}
	if iv.N == 0 && iv.Class == rtl.Int {
		if rx, ok := bin.R.(rtl.RegX); ok {
			if _, isIV := ctx.ivs[rx.Reg]; isIV && ctx.operandInvariant(bin.L) {
				iv, limit = rx.Reg, bin.L
				op = op.Swap()
			}
		}
	}
	if limit == nil {
		return nil
	}
	ivi := ctx.ivs[iv]
	info := &tripInfo{iv: iv, step: ivi.step, stepReg: ivi.stepReg,
		regStep: ivi.regStep, stepX: ivi.stepExpr(),
		limit: limit, op: op, cmpIdx: cmpIdx, jmpIdx: jmpIdx}
	// The compare must read the post-increment value: the increment
	// must precede the compare in the latch block (or dominate it).
	if !precedes(ctx, ivi.defIdx, cmpIdx) {
		return nil
	}
	// Direction check.  Register steps are assumed positive (the only
	// pattern the expander emits is "iv = iv + positive step"), so only
	// upward conditions qualify.
	switch {
	case info.regStep && (op == rtl.Lt || op == rtl.Le):
	case !info.regStep && info.step > 0 && (op == rtl.Lt || op == rtl.Le || op == rtl.Ne):
	case !info.regStep && info.step < 0 && (op == rtl.Gt || op == rtl.Ge || op == rtl.Ne):
	default:
		return nil
	}
	// Constant count when both ends are constants.
	if !info.regStep {
		if ivInit, ok := ctx.initialValue(iv); ok {
			if lim, ok := limit.(rtl.Imm); ok {
				n, ok := countIterations(ivInit, lim.V, info.step, op)
				if ok {
					info.constCount = n
					info.known = true
				}
			}
		}
	}
	return info
}

// precedes reports whether instruction a executes before b on every
// iteration (same block and earlier, or a's block dominates b's).
func precedes(ctx *loopCtx, a, b int) bool {
	ba, bb := ctx.g.BlockOf(a), ctx.g.BlockOf(b)
	if ba == nil || bb == nil {
		return false
	}
	if ba == bb {
		return a < b
	}
	return ctx.g.Dominates(ba, bb)
}

// operandInvariant reports whether the expression is a constant or an
// invariant register.
func (ctx *loopCtx) operandInvariant(e rtl.Expr) bool {
	switch x := e.(type) {
	case rtl.Imm:
		return true
	case rtl.RegX:
		return ctx.invariant(x.Reg)
	}
	return false
}

// initialValue finds the constant value of a register at loop entry by
// scanning backwards through the chain of straight-line predecessor
// blocks (preheader, then any block that falls into it exclusively).
func (ctx *loopCtx) initialValue(r rtl.Reg) (int64, bool) {
	b := ctx.loop.Preheader
	if b == nil {
		return 0, false
	}
	for hops := 0; hops < 16 && b != nil; hops++ {
		for n := b.End - 1; n >= b.Start; n-- {
			i := ctx.f.Code[n]
			if i.Kind == rtl.KCall {
				return 0, false
			}
			if d, ok := i.Def(); ok && d == r {
				if c, isC := i.Src.(rtl.Imm); isC && i.Kind == rtl.KAssign {
					return c.V, true
				}
				return 0, false
			}
		}
		// A unique predecessor dominates this block, so its code runs
		// on every path here; keep scanning into it.
		if len(b.Preds) != 1 {
			return 0, false
		}
		b = b.Preds[0]
	}
	return 0, false
}

// countIterations solves for the number of body executions of a
// bottom-tested loop: the body runs, iv += step, then the loop
// continues while (iv op limit).
func countIterations(init, limit, step int64, op rtl.Op) (int64, bool) {
	n := int64(0)
	switch op {
	case rtl.Lt:
		n = ceilDiv(limit-init, step)
	case rtl.Le:
		n = ceilDiv(limit-init+1, step)
	case rtl.Gt:
		n = ceilDiv(init-limit, -step)
	case rtl.Ge:
		n = ceilDiv(init-limit+1, -step)
	case rtl.Ne:
		if step != 0 && (limit-init)%step == 0 {
			n = (limit - init) / step
		} else {
			return 0, false
		}
	default:
		return 0, false
	}
	if n < 1 {
		n = 1 // bottom-tested: the body always runs at least once
	}
	return n, true
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// streamLoop applies the algorithm to one innermost loop.
func streamLoop(f *rtl.Func, g *cfg.Graph, l *cfg.Loop, minTrip int64) bool {
	ctx := analyzeLoop(f, g, l)
	if ctx.hasCall || ctx.stream {
		return false
	}
	trip := analyzeTrip(ctx)
	if trip == nil {
		// Paper step 1: "If it is impossible to determine, set
		// loop_count to infinity" — the infinite-stream path.
		return streamLoopInfinite(f, g, l, ctx)
	}
	if trip.known && trip.constCount < minTrip {
		return false // paper step 1: few iterations, streams not worth it
	}
	refs, ok := ctx.collectRefs()
	if !ok {
		return false
	}
	parts := buildPartitions(refs)
	postIncr := map[*memRef]bool{}

	// Choose streamable references (paper step 2).
	type cand struct {
		ref *memRef
	}
	var candidates []*memRef
	streamedLoads := map[rtl.Class]int{}
	streamedStores := map[rtl.Class]int{}
	totalLoads := map[rtl.Class]int{}
	totalStores := map[rtl.Class]int{}
	for _, r := range refs {
		if r.write {
			totalStores[r.class]++
		} else {
			totalLoads[r.class]++
		}
	}
	for _, p := range parts {
		if p.unsafe {
			continue
		}
		hasRead, hasWrite := false, false
		for _, r := range p.refs {
			if r.write {
				hasWrite = true
			} else {
				hasRead = true
			}
		}
		if hasRead && hasWrite {
			continue // step 2a: memory recurrence remains; do not stream
		}
		for _, r := range p.refs {
			if !r.every {
				continue // step 2c: not executed every iteration
			}
			if !r.lin.hasIV() || r.lin.iv != trip.iv {
				continue
			}
			// A reference after the increment sees the stepped value;
			// its stream base shifts by one stride.  Ambiguous ordering
			// disqualifies the reference.
			inc := ctx.ivs[trip.iv].defIdx
			switch {
			case precedes(ctx, r.accIdx, inc):
			case precedes(ctx, inc, r.accIdx):
				postIncr[r] = true
			default:
				continue
			}
			if !trip.regStep && r.lin.cee*trip.step == 0 {
				continue
			}
			candidates = append(candidates, r)
			if r.write {
				streamedStores[r.class]++
			} else {
				streamedLoads[r.class]++
			}
		}
	}
	if len(candidates) == 0 {
		return false
	}

	// Step 2e: allocate FIFOs.  Each class has two FIFOs per direction,
	// but FIFO0 doubles as the path for ordinary scalar loads/stores,
	// so it can only carry a stream when *no* scalar access of the same
	// class and direction remains in the loop afterwards.  With C
	// streamable candidates out of T total references: if C == T and
	// C <= 2, all stream (FIFO0 + FIFO1); otherwise scalar traffic
	// keeps FIFO0 and exactly one candidate streams on FIFO1.
	type dirClass struct {
		write bool
		class rtl.Class
	}
	byDC := map[dirClass][]*memRef{}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].accIdx < candidates[j].accIdx })
	for _, r := range candidates {
		key := dirClass{r.write, r.class}
		byDC[key] = append(byDC[key], r)
	}
	alloc := map[*memRef]int{}
	for key, cands := range byDC {
		total := totalLoads[key.class]
		if key.write {
			total = totalStores[key.class]
		}
		if len(cands) == total && len(cands) <= 2 {
			for n, r := range cands {
				alloc[r] = rtl.FIFO0 + n
			}
			continue
		}
		// Scalar traffic (or overflow candidates) keeps FIFO0.
		alloc[cands[0]] = rtl.FIFO1
	}
	if len(alloc) == 0 {
		return false
	}

	// All streamed references share the loop's iteration count, so the
	// loop test can be replaced only if every streamed ref has the
	// count.  (They do by construction: r.every and same iv.)

	// --- apply the transformation -----------------------------------

	hdrLabel := ctx.loopLabel()
	if hdrLabel == "" {
		return false
	}

	// Rewrite the body.  Collect deletions, apply descending.  The jnd
	// branch tests the first allocated stream (inputs preferred),
	// chosen deterministically by body position.
	var deletions []int
	var jndFIFO rtl.Reg
	jndSet, jndIsInput := false, false
	var allocOrder []*memRef
	for r := range alloc {
		allocOrder = append(allocOrder, r)
	}
	sort.Slice(allocOrder, func(i, j int) bool { return allocOrder[i].accIdx < allocOrder[j].accIdx })
	for _, r := range allocOrder {
		fifoN := alloc[r]
		newFifo := rtl.Reg{Class: r.class, N: fifoN}
		oldFifo := rtl.Reg{Class: r.class, N: rtl.FIFO0}
		if r.write {
			enq := f.Code[r.dataIdx]
			enq.Dst = newFifo
			deletions = append(deletions, r.accIdx)
			if !jndSet {
				jndFIFO, jndSet = newFifo, true
			}
		} else {
			deq := f.Code[r.dataIdx]
			deq.MapExprs(func(e rtl.Expr) rtl.Expr {
				return rtl.SubstReg(e, oldFifo, rtl.RX(newFifo))
			})
			deletions = append(deletions, r.accIdx)
			if !jndIsInput {
				jndFIFO, jndSet, jndIsInput = newFifo, true, true
			}
		}
	}

	// Step 2i: replace the latch compare + conditional jump with jnd.
	f.Code[trip.jmpIdx] = &rtl.Instr{Kind: rtl.KJumpNotDone, FIFO: jndFIFO, Target: hdrLabel}
	deletions = append(deletions, trip.cmpIdx)

	sort.Sort(sort.Reverse(sort.IntSlice(deletions)))
	for _, d := range deletions {
		f.Remove(d)
	}

	// Preheader code: count computation and the stream instructions.
	hdr := f.FindLabel(hdrLabel)
	if hdr < 0 {
		return false
	}
	var seq []*rtl.Instr
	countExpr := buildCount(f, &seq, trip)
	// Clamp to >= 1 (bottom-tested loops execute at least once even
	// when the guard is absent, e.g. do-while).
	countExpr = clampCount(f, &seq, countExpr, trip)

	// Sort stream emissions by original instruction order for stable
	// output.
	type emission struct {
		ref   *memRef
		fifoN int
	}
	var ems []emission
	for r, n := range alloc {
		ems = append(ems, emission{r, n})
	}
	sort.Slice(ems, func(i, j int) bool { return ems[i].ref.accIdx < ems[j].ref.accIdx })
	for _, em := range ems {
		r := em.ref
		strideExpr := buildStride(f, &seq, r.lin.cee, trip)
		addr := buildLinExpr(f, &seq, r.lin, trip.iv, r.lin.off, r.class)
		if postIncr[r] {
			addr = rtl.B(rtl.Add, addr, strideExpr)
		}
		baseReg := f.NewVirt(rtl.Int)
		ba := rtl.NewAssign(baseReg, addr)
		ba.Note = "stream base"
		seq = append(seq, ba)
		kind := rtl.KStreamIn
		note := "stream in"
		if r.write {
			kind = rtl.KStreamOut
			note = "stream out"
		}
		si := &rtl.Instr{
			Kind:     kind,
			FIFO:     rtl.Reg{Class: r.class, N: em.fifoN},
			Base:     rtl.RX(baseReg),
			Count:    countExpr,
			Stride:   strideExpr,
			MemSize:  r.size,
			MemClass: r.class,
			Note:     note,
		}
		seq = append(seq, si)
	}
	f.Insert(hdr, seq...)
	return true
}

// buildCount emits preheader code computing the iteration count and
// returns the expression (a register or constant) to use as the stream
// count.
func buildCount(f *rtl.Func, seq *[]*rtl.Instr, trip *tripInfo) rtl.Expr {
	if trip.known {
		return rtl.I(trip.constCount)
	}
	// diff = limit - iv  (or iv - limit for downward loops)
	t := f.NewVirt(rtl.Int)
	var diff rtl.Expr
	up := trip.regStep || trip.step > 0
	if up {
		diff = rtl.B(rtl.Sub, trip.limit, rtl.RX(trip.iv))
	} else {
		diff = rtl.B(rtl.Sub, rtl.RX(trip.iv), trip.limit)
	}
	switch trip.op {
	case rtl.Le, rtl.Ge:
		diff = rtl.B(rtl.Add, diff, rtl.I(1))
	}
	if trip.regStep {
		// ceil(diff / step) with a run-time step: one divide in the
		// preheader.
		d := f.NewVirt(rtl.Int)
		di := rtl.NewAssign(d, diff)
		di.Note = "stream span"
		*seq = append(*seq, di)
		num := f.NewVirt(rtl.Int)
		ni := rtl.NewAssign(num, rtl.B(rtl.Sub, rtl.B(rtl.Add, rtl.RX(d), rtl.RX(trip.stepReg)), rtl.I(1)))
		ni.Note = "stream count numerator"
		*seq = append(*seq, ni)
		ins := rtl.NewAssign(t, rtl.B(rtl.Div, rtl.RX(num), rtl.RX(trip.stepReg)))
		ins.Note = "stream count"
		*seq = append(*seq, ins)
		return rtl.RX(t)
	}
	step := trip.step
	if step < 0 {
		step = -step
	}
	if step != 1 {
		diff = rtl.B(rtl.Div, rtl.B(rtl.Add, diff, rtl.I(step-1)), rtl.I(step))
	}
	ins := rtl.NewAssign(t, diff)
	ins.Note = "stream count"
	*seq = append(*seq, ins)
	return rtl.RX(t)
}

// buildStride returns the byte stride of one reference as an
// expression: cee times the loop step, emitting a scaling instruction
// into the preheader when the step is a run-time register.
func buildStride(f *rtl.Func, seq *[]*rtl.Instr, cee int64, trip *tripInfo) rtl.Expr {
	if !trip.regStep {
		return rtl.I(cee * trip.step)
	}
	if cee == 1 {
		return rtl.RX(trip.stepReg)
	}
	t := f.NewVirt(rtl.Int)
	var e rtl.Expr
	if sh := log2i64(cee); sh >= 0 {
		e = rtl.B(rtl.Shl, rtl.RX(trip.stepReg), rtl.I(int64(sh)))
	} else {
		e = rtl.B(rtl.Mul, rtl.RX(trip.stepReg), rtl.I(cee))
	}
	ins := rtl.NewAssign(t, e)
	ins.Note = "stream stride"
	*seq = append(*seq, ins)
	return rtl.RX(t)
}

// clampCount emits branch-free code forcing the count to at least one:
// cnt += (1 - cnt) & ((cnt - 1) >> 63).
func clampCount(f *rtl.Func, seq *[]*rtl.Instr, count rtl.Expr, trip *tripInfo) rtl.Expr {
	if trip.known {
		return count // already >= 1 by countIterations
	}
	mask := f.NewVirt(rtl.Int)
	m := rtl.NewAssign(mask, rtl.B(rtl.Shr, rtl.B(rtl.Sub, count, rtl.I(1)), rtl.I(63)))
	m.Note = "count clamp mask"
	*seq = append(*seq, m)
	out := f.NewVirt(rtl.Int)
	o := rtl.NewAssign(out, rtl.B(rtl.Add, count,
		rtl.B(rtl.And, rtl.B(rtl.Sub, rtl.I(1), count), rtl.RX(mask))))
	o.Note = "clamp count to >= 1"
	*seq = append(*seq, o)
	return rtl.RX(out)
}

// streamLoopInfinite implements the paper's unknown-trip-count branch
// of step 2i: read references stream with an infinite count, the
// original loop test remains, and stream-stop instructions are placed
// at every loop exit.  Only input streams are generated — an infinite
// output stream stopped at the exit could lose enqueued data still in
// flight.
func streamLoopInfinite(f *rtl.Func, g *cfg.Graph, l *cfg.Loop, ctx *loopCtx) bool {
	refs, ok := ctx.collectRefs()
	if !ok {
		return false
	}
	// Stream stops go at the start of each exit target.  Paths that
	// reach an exit label without entering the loop execute the stop on
	// an inactive stream, which the hardware treats as a no-op (scalar
	// FIFO traffic is unaffected), so shared exit labels are fine.
	var exitLabels []string
	for _, t := range l.ExitTargets {
		idx := -1
		for n := t.Start; n < t.End; n++ {
			if f.Code[n].Kind == rtl.KLabel {
				idx = n
				break
			}
		}
		if idx == -1 || idx != t.Start {
			return false // exit entered by fall-through: no safe stop point
		}
		exitLabels = append(exitLabels, f.Code[idx].Name)
	}
	if len(exitLabels) == 0 {
		return false
	}

	totalLoads := map[rtl.Class]int{}
	for _, r := range refs {
		if !r.write {
			totalLoads[r.class]++
		}
	}
	type cand struct {
		ref  *memRef
		ivi  ivInfo
		post bool
	}
	var cands []cand
	for _, p := range buildPartitions(refs) {
		if p.unsafe {
			continue
		}
		hasWrite := false
		for _, r := range p.refs {
			if r.write {
				hasWrite = true
			}
		}
		if hasWrite {
			continue // writes never stream on the infinite path
		}
		for _, r := range p.refs {
			if !r.every || !r.lin.hasIV() {
				continue
			}
			ivi, ok := ctx.ivs[r.lin.iv]
			if !ok {
				continue
			}
			c := cand{ref: r, ivi: ivi}
			switch {
			case precedes(ctx, r.accIdx, ivi.defIdx):
			case precedes(ctx, ivi.defIdx, r.accIdx):
				c.post = true
			default:
				continue
			}
			if !ivi.regStep && r.lin.cee*ivi.step == 0 {
				continue
			}
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return false
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ref.accIdx < cands[j].ref.accIdx })

	// FIFO allocation (inputs only), same discipline as the finite path.
	byClass := map[rtl.Class][]cand{}
	for _, c := range cands {
		byClass[c.ref.class] = append(byClass[c.ref.class], c)
	}
	type alloc struct {
		cand
		fifoN int
	}
	var allocs []alloc
	for cl, cs := range byClass {
		if len(cs) == totalLoads[cl] && len(cs) <= 2 {
			for n, c := range cs {
				allocs = append(allocs, alloc{c, rtl.FIFO0 + n})
			}
		} else {
			allocs = append(allocs, alloc{cs[0], rtl.FIFO1})
		}
	}
	if len(allocs) == 0 {
		return false
	}
	sort.Slice(allocs, func(i, j int) bool { return allocs[i].ref.accIdx < allocs[j].ref.accIdx })

	hdrLabel := ctx.loopLabel()
	if hdrLabel == "" {
		return false
	}

	// Rewrite the body: delete loads, retarget dequeues.
	var deletions []int
	for _, a := range allocs {
		newFifo := rtl.Reg{Class: a.ref.class, N: a.fifoN}
		oldFifo := rtl.Reg{Class: a.ref.class, N: rtl.FIFO0}
		deq := f.Code[a.ref.dataIdx]
		deq.MapExprs(func(e rtl.Expr) rtl.Expr {
			return rtl.SubstReg(e, oldFifo, rtl.RX(newFifo))
		})
		deletions = append(deletions, a.ref.accIdx)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deletions)))
	for _, d := range deletions {
		f.Remove(d)
	}

	// Preheader: infinite stream-ins.
	hdr := f.FindLabel(hdrLabel)
	if hdr < 0 {
		return false
	}
	var seq []*rtl.Instr
	for _, a := range allocs {
		trip := &tripInfo{
			iv: a.ref.lin.iv, step: a.ivi.step, stepReg: a.ivi.stepReg,
			regStep: a.ivi.regStep, stepX: a.ivi.stepExpr(),
		}
		strideExpr := buildStride(f, &seq, a.ref.lin.cee, trip)
		addr := buildLinExpr(f, &seq, a.ref.lin, a.ref.lin.iv, a.ref.lin.off, a.ref.class)
		if a.post {
			addr = rtl.B(rtl.Add, addr, strideExpr)
		}
		baseReg := f.NewVirt(rtl.Int)
		ba := rtl.NewAssign(baseReg, addr)
		ba.Note = "stream base"
		seq = append(seq, ba)
		seq = append(seq, &rtl.Instr{
			Kind:     rtl.KStreamIn,
			FIFO:     rtl.Reg{Class: a.ref.class, N: a.fifoN},
			Base:     rtl.RX(baseReg),
			Count:    rtl.I(-1),
			Stride:   strideExpr,
			MemSize:  a.ref.size,
			MemClass: a.ref.class,
			Note:     "stream in (infinite)",
		})
	}
	f.Insert(hdr, seq...)

	// Stream stops at every exit (paper step 2i).
	for _, lbl := range exitLabels {
		at := f.FindLabel(lbl)
		if at < 0 {
			continue
		}
		var stops []*rtl.Instr
		for _, a := range allocs {
			stops = append(stops, &rtl.Instr{
				Kind: rtl.KStreamStop,
				FIFO: rtl.Reg{Class: a.ref.class, N: a.fifoN},
				Note: "stop infinite stream",
			})
		}
		f.Insert(at+1, stops...)
	}
	return true
}
