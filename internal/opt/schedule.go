package opt

import (
	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// ScheduleLoopTest implements the paper's condition-code scheduling
// discipline: "It is also the compiler's job to arrange the code so
// that the computation of the condition code occurs well before the
// result is needed.  When this is done properly, conditional jumps,
// like unconditional jumps, essentially have zero cost."
//
// For a bottom-tested loop whose latch compares the just-incremented
// induction variable against an invariant limit, the compare moves to
// the top of the body, rewritten over the pre-increment value:
//
//	L:  body            L:  r31 := ((iv + step) OP limit)
//	    iv := iv + s        body
//	    r31 := iv OP n  =>  iv := iv + s
//	    jumpT L             jumpT L
//
// The condition code is then enqueued an entire body ahead of the
// branch, so the IFU never stalls at the bottom of the loop and keeps
// dispatching the next iteration's loads — which is what lets the
// decoupled access pipeline run ahead and hide memory latency.
//
// The transformation is only legal when the loop contains no other
// condition-code producer or consumer (the CC FIFO is strictly
// ordered), and when nothing between the loop top and the increment
// redefines the induction variable or the limit.
func ScheduleLoopTest(f *rtl.Func) (bool, error) {
	changed := false
	for round := 0; round < 64; round++ {
		more, err := scheduleOnce(f)
		if err != nil {
			return changed, err
		}
		if !more {
			return changed, nil
		}
		changed = true
	}
	return changed, nil
}

func scheduleOnce(f *rtl.Func) (bool, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return false, err
	}
	g.Dominators()
	for _, l := range g.NaturalLoops() {
		ctx := analyzeLoop(f, g, l)
		if ctx.hasCall {
			continue // a callee's compares would interleave in the CC FIFO
		}
		trip := analyzeTrip(ctx)
		if trip == nil {
			continue
		}
		// No other CC traffic inside the loop.
		ccOps := 0
		for _, b := range l.BlockList() {
			for n := b.Start; n < b.End; n++ {
				i := f.Code[n]
				if i.IsCompare() || i.Kind == rtl.KCondJump {
					ccOps++
				}
			}
		}
		if ccOps != 2 { // exactly the latch compare + jump
			continue
		}
		// The compare must not already be scheduled (i.e. it sits
		// directly before the jump; analyzeTrip guarantees that).
		hdr := ctx.hdrLabelIdx
		if hdr < 0 || hdr+1 > trip.cmpIdx {
			continue
		}
		// The limit operand must be valid at the loop top: a constant
		// or an invariant register (analyzeTrip guarantees that too).
		// Build the hoisted compare over the pre-increment value.
		cmp := f.Code[trip.cmpIdx]
		pre := rtl.Bin{
			Op: trip.op,
			L:  rtl.B(rtl.Add, rtl.RX(trip.iv), trip.stepX),
			R:  trip.limit,
		}
		sense := true
		newCmp := rtl.NewAssign(rtl.Reg{Class: rtl.Int, N: rtl.ZeroReg}, pre)
		newCmp.Note = "loop test (scheduled early)"
		// Rewrite the branch to the canonical taken-when-true sense.
		jmp := f.Code[trip.jmpIdx]
		jmp.Sense = sense
		jmp.CCClass = rtl.Int
		_ = cmp
		f.Remove(trip.cmpIdx)
		f.Insert(hdr+1, newCmp)
		return true, nil
	}
	return false, nil
}
