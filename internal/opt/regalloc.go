package opt

import (
	"fmt"
	"sort"

	"wmstream/internal/cfg"
	"wmstream/internal/rtl"
)

// Register pools available to the assigner.  r0/r1 f0/f1 are FIFOs,
// r2..r9/f2..f9 carry arguments and results, r29/r30/r31 are
// SP/LR/zero, leaving these for allocation.
var pools = [rtl.NumClasses][]int{
	rtl.Int:   poolRange(10, 28),
	rtl.Float: poolRange(10, 30),
}

func poolRange(lo, hi int) []int {
	var out []int
	for n := lo; n <= hi; n++ {
		out = append(out, n)
	}
	return out
}

// RegAlloc assigns every virtual register to a hardware register using
// linear-scan allocation.  Virtual registers live across a call are
// spilled to the stack frame (the ABI has no callee-saved registers),
// as are registers that do not fit the pool.  Spill traffic uses the
// secondary FIFO pair (r1/f1) so that it can never disturb the queue
// order of ordinary loads and stores, which use r0/f0.
func RegAlloc(f *rtl.Func) error {
	spilled := map[rtl.Reg]bool{}
	for iter := 0; iter < 100; iter++ {
		iv, err := buildIntervals(f)
		if err != nil {
			return err
		}
		// Spill everything live across a call first.
		var toSpill []rtl.Reg
		for r, in := range iv.acrossCall {
			if in && !spilled[r] {
				toSpill = append(toSpill, r)
			}
		}
		if len(toSpill) > 0 {
			sortRegs(toSpill)
			for _, r := range toSpill {
				if err := spill(f, r); err != nil {
					return err
				}
				spilled[r] = true
			}
			continue
		}
		// Try to assign.
		victim, assignment := linearScan(iv)
		if victim == nil {
			applyAssignment(f, assignment)
			return nil
		}
		if spilled[*victim] {
			return fmt.Errorf("regalloc: %s respilled; pressure unresolvable", *victim)
		}
		if err := spill(f, *victim); err != nil {
			return err
		}
		spilled[*victim] = true
	}
	return fmt.Errorf("regalloc: did not converge")
}

type interval struct {
	reg        rtl.Reg
	start, end int
}

type intervalSet struct {
	list       []interval
	acrossCall map[rtl.Reg]bool
}

func buildIntervals(f *rtl.Func) (*intervalSet, error) {
	g, err := cfg.Build(f)
	if err != nil {
		return nil, err
	}
	g.Liveness()
	start := map[rtl.Reg]int{}
	end := map[rtl.Reg]int{}
	touch := func(r rtl.Reg, pos int) {
		if !r.IsVirtual() {
			return
		}
		if s, ok := start[r]; !ok || pos < s {
			start[r] = pos
		}
		if e, ok := end[r]; !ok || pos > e {
			end[r] = pos
		}
	}
	across := map[rtl.Reg]bool{}
	for _, b := range g.Blocks {
		g.LiveAtEach(b, func(idx int, i *rtl.Instr, after cfg.RegSet) {
			for r := range after {
				touch(r, idx)
				if idx+1 < b.End {
					touch(r, idx+1)
				}
			}
			cfg.InstrUses(i, func(r rtl.Reg) { touch(r, idx) })
			cfg.InstrDefs(i, func(r rtl.Reg) { touch(r, idx) })
			if i.Kind == rtl.KCall {
				for r := range after {
					if r.IsVirtual() {
						across[r] = true
					}
				}
			}
		})
		// Live-in/out at block boundaries.
		for r := range b.LiveIn {
			touch(r, b.Start)
		}
		for r := range b.LiveOut {
			if b.End > 0 {
				touch(r, b.End-1)
			}
		}
	}
	set := &intervalSet{acrossCall: across}
	for r, s := range start {
		set.list = append(set.list, interval{r, s, end[r]})
	}
	sort.Slice(set.list, func(i, j int) bool {
		if set.list[i].start != set.list[j].start {
			return set.list[i].start < set.list[j].start
		}
		return set.list[i].reg.N < set.list[j].reg.N
	})
	return set, nil
}

// linearScan attempts a full assignment; on failure it returns the
// register chosen for spilling (the live interval with the furthest
// end).
func linearScan(iv *intervalSet) (victim *rtl.Reg, assignment map[rtl.Reg]rtl.Reg) {
	assignment = map[rtl.Reg]rtl.Reg{}
	type activeEntry struct {
		interval
		phys int
	}
	var active [rtl.NumClasses][]activeEntry
	var free [rtl.NumClasses][]int
	for c := range pools {
		free[c] = append([]int{}, pools[c]...)
	}
	for _, cur := range iv.list {
		c := cur.reg.Class
		// Expire finished intervals.
		keep := active[c][:0]
		for _, a := range active[c] {
			if a.end >= cur.start {
				keep = append(keep, a)
			} else {
				free[c] = append(free[c], a.phys)
			}
		}
		active[c] = keep
		if len(free[c]) == 0 {
			// Spill the interval ending last (current or an active one).
			worst := cur
			for _, a := range active[c] {
				if a.end > worst.end {
					worst = a.interval
				}
			}
			v := worst.reg
			return &v, nil
		}
		sort.Ints(free[c])
		phys := free[c][0]
		free[c] = free[c][1:]
		assignment[cur.reg] = rtl.Reg{Class: c, N: phys}
		active[c] = append(active[c], activeEntry{cur, phys})
	}
	return nil, assignment
}

func applyAssignment(f *rtl.Func, assignment map[rtl.Reg]rtl.Reg) {
	rename := func(r rtl.Reg) rtl.Reg {
		if p, ok := assignment[r]; ok {
			return p
		}
		return r
	}
	for _, i := range f.Code {
		i.MapExprs(func(e rtl.Expr) rtl.Expr { return rtl.RenameRegs(e, rename) })
		if i.Kind == rtl.KAssign {
			i.Dst = rename(i.Dst)
		}
		for n := range i.Args {
			i.Args[n] = rename(i.Args[n])
		}
	}
}

// spill rewrites every access of r through a stack slot.  Spill
// traffic normally travels through the secondary FIFO (r1/f1), which
// ordinary code never touches; inside the textual extent of a loop
// whose FIFO1 is bound to a stream it falls back to FIFO0, and when
// both are stream-bound the compilation fails loudly rather than
// corrupting queue order.
func spill(f *rtl.Func, r rtl.Reg) error {
	regions := streamRegions(f, r.Class)
	pickFIFO := func(at int) (rtl.Reg, error) {
		if !regions[rtl.FIFO1].contains(at) {
			return rtl.Reg{Class: r.Class, N: rtl.FIFO1}, nil
		}
		if !regions[rtl.FIFO0].contains(at) {
			return rtl.Reg{Class: r.Class, N: rtl.FIFO0}, nil
		}
		return rtl.Reg{}, fmt.Errorf("regalloc: spill site %d inside loops streaming both %s FIFOs", at, r.Class)
	}
	oldFrame := f.Frame
	slot := (f.Frame + 7) &^ 7
	f.Frame = slot + 8
	addr := func() rtl.Expr {
		return rtl.B(rtl.Add, rtl.RX(rtl.RegSP), rtl.I(int64(slot)))
	}
	for n := 0; n < len(f.Code); n++ {
		i := f.Code[n]
		usesR := false
		for _, u := range i.Uses(nil) {
			if u == r {
				usesR = true
			}
		}
		defsR := false
		if d, ok := i.Def(); ok && d == r {
			defsR = true
		}
		if !usesR && !defsR {
			continue
		}
		if usesR {
			fifo, err := pickFIFO(n)
			if err != nil {
				return err
			}
			nv := f.NewVirt(r.Class)
			f.Insert(n,
				rtl.NewLoad(fifo, addr(), 8),
				rtl.NewAssign(nv, rtl.RX(fifo)))
			n += 2
			i.MapExprs(func(e rtl.Expr) rtl.Expr { return rtl.SubstReg(e, r, rtl.RX(nv)) })
			for k := range i.Args {
				if i.Args[k] == r {
					i.Args[k] = nv
				}
			}
			regions[rtl.FIFO0].shift(n-2, 2)
			regions[rtl.FIFO1].shift(n-2, 2)
		}
		if defsR {
			fifo, err := pickFIFO(n)
			if err != nil {
				return err
			}
			nv := f.NewVirt(r.Class)
			i.Dst = nv
			f.Insert(n+1,
				rtl.NewAssign(fifo, rtl.RX(nv)),
				rtl.NewStore(fifo, addr(), 8))
			n += 2
			regions[rtl.FIFO0].shift(n-1, 2)
			regions[rtl.FIFO1].shift(n-1, 2)
		}
	}
	patchFrame(f, oldFrame, f.Frame)
	return nil
}

// spanSet tracks the textual extents of loops whose FIFO is bound to a
// stream.
type spanSet []span

type span struct{ lo, hi int }

func (ss spanSet) contains(at int) bool {
	for _, s := range ss {
		if at >= s.lo && at <= s.hi {
			return true
		}
	}
	return false
}

func (ss spanSet) shift(from, by int) {
	for k := range ss {
		if ss[k].lo >= from {
			ss[k].lo += by
		}
		if ss[k].hi >= from {
			ss[k].hi += by
		}
	}
}

// streamRegions returns, per FIFO number, the spans from each stream
// instruction of the class to the matching jump-not-done (or function
// end) — the region in which spill traffic must avoid that FIFO.
func streamRegions(f *rtl.Func, c rtl.Class) map[int]spanSet {
	out := map[int]spanSet{rtl.FIFO0: nil, rtl.FIFO1: nil}
	for n, i := range f.Code {
		if (i.Kind != rtl.KStreamIn && i.Kind != rtl.KStreamOut) || i.MemClass != c {
			continue
		}
		hi := len(f.Code) - 1
		for k := n + 1; k < len(f.Code); k++ {
			j := f.Code[k]
			if j.Kind == rtl.KJumpNotDone {
				hi = k
				break
			}
		}
		out[i.FIFO.N] = append(out[i.FIFO.N], span{n, hi})
	}
	return out
}

// patchFrame updates (or inserts) the prologue/epilogue stack-pointer
// adjustments after the frame grew.
func patchFrame(f *rtl.Func, oldFrame, newFrame int) {
	if oldFrame == newFrame {
		return
	}
	patched := false
	for _, i := range f.Code {
		if i.Kind != rtl.KAssign || i.Dst != rtl.RegSP {
			continue
		}
		b, ok := i.Src.(rtl.Bin)
		if !ok {
			continue
		}
		if rx, isReg := b.L.(rtl.RegX); !isReg || rx.Reg != rtl.RegSP {
			continue
		}
		c, isImm := b.R.(rtl.Imm)
		if !isImm || c.V != int64(oldFrame) {
			continue
		}
		i.Src = rtl.Bin{Op: b.Op, L: b.L, R: rtl.Imm{V: int64(newFrame)}}
		patched = true
	}
	if !patched && oldFrame == 0 {
		// Leaf function without a frame: insert fresh prologue and
		// epilogues.
		f.Insert(0, rtl.NewAssign(rtl.RegSP,
			rtl.B(rtl.Sub, rtl.RX(rtl.RegSP), rtl.I(int64(newFrame)))))
		for n := 0; n < len(f.Code); n++ {
			if f.Code[n].Kind == rtl.KRet {
				f.Insert(n, rtl.NewAssign(rtl.RegSP,
					rtl.B(rtl.Add, rtl.RX(rtl.RegSP), rtl.I(int64(newFrame)))))
				n++
			}
		}
	}
}

func sortRegs(rs []rtl.Reg) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Class != rs[j].Class {
			return rs[i].Class < rs[j].Class
		}
		return rs[i].N < rs[j].N
	})
}
