package opt

import "wmstream/internal/rtl"

// CleanBranches tidies control flow: jumps to the immediately following
// label disappear, jump chains are threaded, unreachable code is
// dropped, and labels nothing references are removed.
func CleanBranches(f *rtl.Func) bool {
	changed := false
	for round := 0; round < 10; round++ {
		c := threadJumps(f)
		c = removeJumpToNext(f) || c
		c = removeUnreachable(f) || c
		c = removeUnusedLabels(f) || c
		if !c {
			return changed
		}
		changed = true
	}
	return changed
}

// threadJumps retargets branches whose destination label is immediately
// followed by an unconditional jump.
func threadJumps(f *rtl.Func) bool {
	// label -> ultimate destination
	next := map[string]string{}
	for n, i := range f.Code {
		if i.Kind != rtl.KLabel {
			continue
		}
		// Find the first non-label instruction after it.
		for k := n + 1; k < len(f.Code); k++ {
			if f.Code[k].Kind == rtl.KLabel {
				continue
			}
			if f.Code[k].Kind == rtl.KJump {
				next[i.Name] = f.Code[k].Target
			}
			break
		}
	}
	changed := false
	for _, i := range f.Code {
		if i.Kind != rtl.KJump && i.Kind != rtl.KCondJump && i.Kind != rtl.KJumpNotDone {
			continue
		}
		seen := map[string]bool{}
		for {
			to, ok := next[i.Target]
			if !ok || to == i.Target || seen[i.Target] {
				break
			}
			seen[i.Target] = true
			i.Target = to
			changed = true
		}
	}
	return changed
}

func removeJumpToNext(f *rtl.Func) bool {
	changed := false
	for n := 0; n < len(f.Code); n++ {
		i := f.Code[n]
		if i.Kind != rtl.KJump {
			continue
		}
		// Does the target label appear before the next real instruction?
		redundant := false
		for k := n + 1; k < len(f.Code); k++ {
			if f.Code[k].Kind == rtl.KLabel {
				if f.Code[k].Name == i.Target {
					redundant = true
				}
				continue
			}
			break
		}
		if redundant {
			f.Remove(n)
			n--
			changed = true
		}
	}
	return changed
}

// removeUnreachable deletes instructions that can never execute: those
// after an unconditional control transfer and before the next label.
func removeUnreachable(f *rtl.Func) bool {
	changed := false
	for n := 0; n < len(f.Code); n++ {
		i := f.Code[n]
		if i.Kind != rtl.KJump && i.Kind != rtl.KRet && i.Kind != rtl.KHalt {
			continue
		}
		for n+1 < len(f.Code) && f.Code[n+1].Kind != rtl.KLabel {
			f.Remove(n + 1)
			changed = true
		}
	}
	return changed
}

func removeUnusedLabels(f *rtl.Func) bool {
	used := map[string]bool{}
	for _, i := range f.Code {
		switch i.Kind {
		case rtl.KJump, rtl.KCondJump, rtl.KJumpNotDone:
			used[i.Target] = true
		}
	}
	changed := false
	for n := 0; n < len(f.Code); n++ {
		i := f.Code[n]
		if i.Kind == rtl.KLabel && !used[i.Name] {
			f.Remove(n)
			n--
			changed = true
		}
	}
	return changed
}
