// wmcc is the compiler driver: it compiles a Mini-C source file to WM
// assembly at a chosen optimization level.
//
// Usage:
//
//	wmcc [-O level] [-g] [-fn name] [-o out.wm] [-stats] [-strict] [-debug-passes] file.mc
//
// Levels: 0 naive, 1 standard optimizations, 2 +recurrence
// optimization, 3 +streaming (default).  With -fn only that function's
// listing is printed (handy for comparing against the paper's
// figures).  -g annotates every instruction with its source line
// ("@N"); wmsim reads the annotations back, so profiles survive the
// assembly round trip.  -stats prints a per-pass table (invocations,
// fires, instruction delta, time) to stderr; -debug-passes additionally
// dumps each function's RTL before optimization and after every pass
// that changed it (vpo's -d dumps) and runs the RTL invariant checker
// at every pass boundary.
//
// When an optimization pass misbehaves (panics, corrupts the IR, or
// fails to converge) the compiler contains the fault: the function is
// rolled back and compiled without that pass, and wmcc reports the
// degradation on stderr.  -strict turns any such degradation into a
// compilation failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wmstream"
	"wmstream/internal/buildinfo"
	"wmstream/internal/cli"
)

func main() {
	level := flag.Int("O", 3, "optimization level 0..3")
	debugInfo := flag.Bool("g", false, "annotate instructions with @line debug info")
	fn := flag.String("fn", "", "print only this function's listing")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print per-pass statistics to stderr")
	strict := flag.Bool("strict", false, "fail compilation when a faulty pass is contained instead of degrading")
	debugPasses := flag.Bool("debug-passes", false, "dump RTL after every firing pass and verify IR invariants")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("wmcc"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wmcc [-O level] [-fn name] [-o out.wm] [-stats] [-strict] [-debug-passes] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cfg := wmstream.CompileConfig{
		Options: wmstream.LevelOptions(*level),
		Strict:  *strict,
	}
	if *debugPasses {
		cfg.Debug = io.Writer(os.Stderr)
	}
	res, err := wmstream.CompileWithConfig(string(src), cfg)
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "wmcc: %s\n", d)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, res.Stats.Table())
	}
	p := res.Program

	text := p.Listing()
	if *debugInfo {
		text = p.ListingDebug()
	}
	if *fn != "" {
		text = p.FuncListing(*fn)
		if text == "" {
			fatal(fmt.Errorf("no function %q", *fn))
		}
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, cli.RenderError("wmcc", err))
	os.Exit(1)
}
