// wmcc is the compiler driver: it compiles a Mini-C source file to WM
// assembly at a chosen optimization level.
//
// Usage:
//
//	wmcc [-O level] [-fn name] [-o out.wm] file.mc
//
// Levels: 0 naive, 1 standard optimizations, 2 +recurrence
// optimization, 3 +streaming (default).  With -fn only that function's
// listing is printed (handy for comparing against the paper's
// figures).
package main

import (
	"flag"
	"fmt"
	"os"

	"wmstream"
)

func main() {
	level := flag.Int("O", 3, "optimization level 0..3")
	fn := flag.String("fn", "", "print only this function's listing")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wmcc [-O level] [-fn name] [-o out.wm] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := wmstream.Compile(string(src), *level)
	if err != nil {
		fatal(err)
	}
	text := p.Listing()
	if *fn != "" {
		text = p.FuncListing(*fn)
		if text == "" {
			fatal(fmt.Errorf("no function %q", *fn))
		}
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wmcc:", err)
	os.Exit(1)
}
