// wmsim runs a WM program on the cycle-level simulator and reports
// execution statistics.  It accepts WM assembly (as produced by wmcc,
// any extension but .mc) or Mini-C source (.mc extension, compiled
// in-process at the chosen -O level).
//
// Usage:
//
//	wmsim [-latency n] [-ports n] [-fifo n] [-scu n] [-watchdog n]
//	      [-engine name] [-O n] [-stats] [-trace out.json] [-profile]
//	      [-progress dur] [-max-wall dur]
//	      [-cpuprofile out.pprof] [-memprofile out.pprof] file.{wm,mc}
//
// -stats prints the per-unit utilization and stall-attribution table:
// every cycle of every functional unit charged to issued work,
// idleness, or the hazard that blocked it.  -trace writes a Chrome
// trace-event JSON file (load it in Perfetto or chrome://tracing) with
// one span track per unit, FIFO-occupancy counter tracks, and — when
// the input is Mini-C — the compile passes on the same timeline.
// -profile prints the source-level hot-spot report (requires debug
// info: a .mc input, or assembly with @line annotations from wmcc -g).
// -progress prints a live progress line (cycles, instructions,
// streamed elements) to stderr at the given interval — the heartbeat
// of a long simulation.  -max-wall bounds the host wall-clock time of
// the simulation; an exhausted budget exits nonzero with the partial
// counts.  Both are served by the shared execution core
// (internal/exec), which runs the engine in bounded slices.
// -cpuprofile and -memprofile write *host* Go profiles of the
// simulator itself (inspect with go tool pprof) — the knobs used to
// tune the simulation engine's own speed.
//
// A run that deadlocks (no forward progress for -watchdog cycles
// beyond the memory latency) or traps prints a machine snapshot —
// which unit is blocked, on which FIFO, and what it was trying to
// issue — before exiting nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wmstream"
	"wmstream/internal/buildinfo"
	"wmstream/internal/cli"
)

func main() {
	latency := flag.Int("latency", 0, "memory latency in cycles (0 = default)")
	ports := flag.Int("ports", 0, "memory ports per cycle (0 = default)")
	fifo := flag.Int("fifo", 0, "FIFO depth (0 = default)")
	scu := flag.Int("scu", 0, "number of stream control units (0 = default)")
	watchdog := flag.Int("watchdog", 0, "deadlock watchdog slack in cycles (0 = default)")
	engine := flag.String("engine", "auto", "simulation engine: auto, translated, fast, or reference (all bit-identical)")
	level := flag.Int("O", 3, "optimization level for .mc inputs (0-3)")
	stats := flag.Bool("stats", false, "print execution statistics and the per-unit stall table to stderr")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (view in Perfetto)")
	profile := flag.Bool("profile", false, "print the source-level hot-spot profile to stderr")
	progressEvery := flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	maxWall := flag.Duration("max-wall", 0, "host wall-clock budget for the simulation (0 = unlimited)")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU profile of the simulation to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a host heap profile after the simulation to this file (go tool pprof)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("wmsim"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wmsim [flags] file.{wm,mc}")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	var p *wmstream.Program
	var compileStats *wmstream.CompileStats
	if strings.HasSuffix(path, ".mc") {
		res, err := wmstream.CompileWithConfig(string(src),
			wmstream.CompileConfig{Options: wmstream.LevelOptions(*level)})
		if err != nil {
			// Surface the structured diagnostics the way wmcc does, not
			// just the summary error.
			for _, d := range res.Diagnostics {
				fmt.Fprintf(os.Stderr, "wmsim: %s\n", d)
			}
			fatal(err)
		}
		p = res.Program
		compileStats = res.Stats
	} else {
		p, err = wmstream.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	}

	m := wmstream.DefaultMachine()
	if *latency > 0 {
		m.MemLatency = *latency
	}
	if *ports > 0 {
		m.MemPorts = *ports
	}
	if *fifo > 0 {
		m.FIFODepth = *fifo
	}
	if *scu > 0 {
		m.NumSCU = *scu
	}
	if *watchdog > 0 {
		m.WatchdogSlack = *watchdog
	}
	switch *engine {
	case "", "auto", "translated", "fast", "reference":
		m.Engine = *engine
	default:
		fatal(fmt.Errorf("unknown engine %q (want auto, translated, fast, or reference)", *engine))
	}

	var opts wmstream.SimOptions
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		opts.TraceJSON = traceFile
		opts.CompileStats = compileStats
	}
	opts.Profile = *profile
	opts.MaxWall = *maxWall
	var lastProgress wmstream.RunProgress
	if *progressEvery > 0 || *maxWall > 0 {
		// Track progress whenever a wall budget is set, so a budget
		// exhaustion can report the partial counts; print only if asked.
		opts.ProgressEvery = *progressEvery
		print := *progressEvery > 0
		opts.Progress = func(p wmstream.RunProgress) {
			lastProgress = p
			if p.Done || !print {
				return // final numbers come from -stats or the error path
			}
			fmt.Fprintf(os.Stderr, "wmsim: progress cycles=%d instructions=%d streamed=%d elapsed=%v\n",
				p.Cycles, p.Instructions, p.StreamElems, p.Elapsed.Round(time.Millisecond))
		}
	}

	var cpuFile *os.File
	if *cpuProfile != "" {
		cpuFile, err = os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			fatal(err)
		}
	}

	res, err := wmstream.RunWithTelemetry(p, m, opts)
	// The profile must be finalized even when the run failed (a deadlock
	// or trap exits nonzero below, bypassing defers).
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fatal(merr)
		}
		runtime.GC() // settle allocations so the heap profile reflects live data
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fatal(merr)
		}
		if merr := f.Close(); merr != nil {
			fatal(merr)
		}
	}
	if res.Output != "" {
		fmt.Print(res.Output)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, cli.RenderError("wmsim", err))
		var wb *wmstream.WallBudgetError
		if errors.As(err, &wb) && lastProgress.Cycles > 0 {
			fmt.Fprintf(os.Stderr, "wmsim: partial cycles=%d instructions=%d memreads=%d memwrites=%d streamed=%d\n",
				lastProgress.Cycles, lastProgress.Instructions,
				lastProgress.MemReads, lastProgress.MemWrites, lastProgress.StreamElems)
		}
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "cycles=%d instructions=%d memreads=%d memwrites=%d streamed=%d\n",
			res.Cycles, res.Instructions, res.MemReads, res.MemWrites, res.StreamElems)
		fmt.Fprint(os.Stderr, res.UnitTable())
	}
	if *profile {
		if res.Profile == nil || res.Profile.TotalRetires == 0 {
			fmt.Fprintln(os.Stderr, "wmsim: no profile data")
		} else {
			fmt.Fprint(os.Stderr, res.Profile.Report(20))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, cli.RenderError("wmsim", err))
	os.Exit(1)
}
