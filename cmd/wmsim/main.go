// wmsim runs a WM assembly file (as produced by wmcc) on the
// cycle-level simulator and reports execution statistics.
//
// Usage:
//
//	wmsim [-latency n] [-ports n] [-fifo n] [-scu n] [-watchdog n] [-stats] file.wm
//
// A run that deadlocks (no forward progress for -watchdog cycles
// beyond the memory latency) or traps prints a machine snapshot —
// which unit is blocked, on which FIFO, and what it was trying to
// issue — before exiting nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"wmstream"
)

func main() {
	latency := flag.Int("latency", 0, "memory latency in cycles (0 = default)")
	ports := flag.Int("ports", 0, "memory ports per cycle (0 = default)")
	fifo := flag.Int("fifo", 0, "FIFO depth (0 = default)")
	scu := flag.Int("scu", 0, "number of stream control units (0 = default)")
	watchdog := flag.Int("watchdog", 0, "deadlock watchdog slack in cycles (0 = default)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wmsim [flags] file.wm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := wmstream.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	m := wmstream.DefaultMachine()
	if *latency > 0 {
		m.MemLatency = *latency
	}
	if *ports > 0 {
		m.MemPorts = *ports
	}
	if *fifo > 0 {
		m.FIFODepth = *fifo
	}
	if *scu > 0 {
		m.NumSCU = *scu
	}
	if *watchdog > 0 {
		m.WatchdogSlack = *watchdog
	}
	res, err := wmstream.Run(p, m)
	if res.Output != "" {
		fmt.Print(res.Output)
	}
	if err != nil {
		var dl *wmstream.DeadlockError
		var tr *wmstream.TrapError
		switch {
		case errors.As(err, &dl):
			fmt.Fprintf(os.Stderr, "wmsim: deadlock at cycle %d\n%s\n", dl.Snapshot.Cycle, indent(dl.Snapshot.String()))
		case errors.As(err, &tr):
			fmt.Fprintf(os.Stderr, "wmsim: trap at cycle %d: %s\n%s\n", tr.Snapshot.Cycle, tr.Reason, indent(tr.Snapshot.String()))
		default:
			fmt.Fprintln(os.Stderr, "wmsim:", err)
		}
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "cycles=%d instructions=%d memreads=%d memwrites=%d streamed=%d\n",
			res.Cycles, res.Instructions, res.MemReads, res.MemWrites, res.StreamElems)
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wmsim:", err)
	os.Exit(1)
}
