// Command wmserved serves the wmstream compiler and simulator over
// HTTP: POST /compile and POST /run accept JSON requests, with
// content-addressed caching, request coalescing, bounded-queue load
// shedding, and Prometheus metrics on GET /metrics.  POST /jobs runs
// simulations asynchronously — long-poll GET /jobs/{id} for progress,
// DELETE /jobs/{id} to cancel — on a separate bounded worker pool with
// per-tenant fair scheduling.  With -cluster-peers, N wmserved
// processes form a consistent-hash cluster: any node serves any
// request, forwarding keys owned by healthy peers over the -peer-addr
// listener so each key is compiled at most once cluster-wide, and
// degrading to local execution when an owner is down.  See
// internal/serve for the pipeline and README.md for the wire format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wmstream/internal/buildinfo"
	"wmstream/internal/cluster"
	"wmstream/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "localhost:8037", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "admission queue depth; overflow is shed with 429")
		cacheMB     = flag.Int("cache-mb", 64, "response cache budget in MiB")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request compile/run deadline")
		maxSourceKB = flag.Int("max-source-kb", 1024, "largest accepted source, in KiB")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")

		jobWorkers = flag.Int("job-workers", 2, "asynchronous job worker pool size")
		jobBatch   = flag.Int("batch", 1, "jobs one worker interleaves slice-by-slice on a shared gate (1 = dedicated execution)")
		jobQueue   = flag.Int("job-queue", 32, "queued job cap across all tenants; overflow is shed with 429")
		jobTenantQ = flag.Int("job-tenant-queue", 8, "queued job cap per tenant")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "per-job wall-clock budget")
		jobTTL     = flag.Duration("job-ttl", 5*time.Minute, "how long finished jobs stay pollable")
		jobPollMax = flag.Duration("job-poll-max", 30*time.Second, "cap on the ?wait= long-poll of GET /jobs/{id}")
		jobDir     = flag.String("job-dir", "", "directory for the durable job journal and checkpoints (empty = memory-only jobs)")
		jobFsync   = flag.String("job-fsync", "batch", "journal fsync policy: batch, always, or never")
		jobRetries = flag.Int("job-retries", 3, "transient-failure retries per job (negative = none)")

		nodeID       = flag.String("node-id", "", "this node's cluster identity (required with -cluster-peers)")
		peerAddr     = flag.String("peer-addr", "", "internal cluster peer listener address (required with -cluster-peers)")
		clusterPeers = flag.String("cluster-peers", "", "static cluster membership as comma-separated id=host:port pairs (peer addresses), including this node; empty = single-node mode")

		debugAddr = flag.String("debug-addr", "", "private debug listener with net/http/pprof plus the trace/metrics endpoints (empty = disabled)")
		traceRing = flag.Int("trace-ring", 0, "completed traces retained for /debug/traces (0 = default 256, negative = tracing off)")
		traceSlow = flag.Duration("trace-slow", 0, "busy-time threshold above which a trace is kept in the slow ring (0 = default 500ms)")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("wmserved"))
		return 0
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wmserved: unexpected arguments %q\n", flag.Args())
		return 2
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Cluster mode: a static peer list makes this node one shard of a
	// consistent-hash cluster.  The peer listener speaks the same
	// HTTP/JSON protocol as the public one — forwarded requests are
	// ordinary requests marked X-WM-Forwarded — so the cluster needs no
	// second wire format.
	var cl *cluster.Cluster
	if *clusterPeers != "" {
		if *nodeID == "" || *peerAddr == "" {
			fmt.Fprintln(os.Stderr, "wmserved: -cluster-peers requires -node-id and -peer-addr")
			return 2
		}
		peers, err := cluster.ParsePeers(*clusterPeers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmserved: %v\n", err)
			return 2
		}
		cl, err = cluster.New(cluster.Config{Self: *nodeID, Peers: peers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmserved: %v\n", err)
			return 2
		}
		cl.Start()
		defer cl.Close()
	}

	srv := serve.New(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheBytes:         int64(*cacheMB) << 20,
		RequestTimeout:     *timeout,
		MaxSourceBytes:     int64(*maxSourceKB) << 10,
		RetryAfter:         *retryAfter,
		Logger:             logger,
		Version:            buildinfo.String(),
		JobWorkers:         *jobWorkers,
		JobBatch:           *jobBatch,
		JobQueueDepth:      *jobQueue,
		JobTenantQueue:     *jobTenantQ,
		JobTimeout:         *jobTimeout,
		JobTTL:             *jobTTL,
		JobPollMax:         *jobPollMax,
		JobDir:             *jobDir,
		JobFsync:           *jobFsync,
		JobRetries:         *jobRetries,
		Cluster:            cl,
		TraceRing:          *traceRing,
		TraceSlowThreshold: *traceSlow,
	})
	if *jobDir != "" {
		rec, mode := srv.Recovery()
		logger.Info("wmserved job journal recovered",
			"dir", *jobDir, "mode", mode,
			"requeued", rec.Requeued, "resumed", rec.Resumed,
			"restored", rec.Restored, "expired", rec.Expired,
			"abandoned", rec.Abandoned,
			"torn_tails", rec.TornTails, "corrupt_records", rec.CorruptRecords)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wmserved: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv}

	// The peer listener serves the same handler as the public one;
	// separating the addresses lets deployments firewall the internal
	// mesh away from client traffic.
	var peerSrv *http.Server
	if cl != nil {
		pln, err := net.Listen("tcp", *peerAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmserved: peer listener: %v\n", err)
			return 1
		}
		peerSrv = &http.Server{Handler: srv}
		go peerSrv.Serve(pln)
		defer peerSrv.Close()
		logger.Info("wmserved cluster peer listening",
			"addr", pln.Addr().String(), "node", cl.Self(),
			"nodes", len(cl.Nodes()), "owned_fraction", cl.OwnedFraction())
	}

	// The optional debug listener keeps profiling and introspection off
	// the public port: pprof handlers plus the same /debug/*, /metrics,
	// and /healthz routes the main server exposes, on an address that
	// can stay firewalled or bound to localhost.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmserved: debug listener: %v\n", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv) // /debug/traces, /debug/statusz, /metrics, /healthz
		debugSrv = &http.Server{Handler: mux}
		go debugSrv.Serve(dln)
		defer debugSrv.Close()
		logger.Info("wmserved debug listening", "addr", dln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("wmserved listening", "addr", ln.Addr().String(), "version", buildinfo.String())

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "wmserved: %v\n", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: flip /healthz to draining and reject new work,
	// let in-flight and queued requests finish, then stop the listener.
	logger.Info("wmserved draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "wmserved: shutdown: %v\n", err)
		srv.Close()
		return 1
	}
	srv.Close()
	logger.Info("wmserved stopped")
	return 0
}
