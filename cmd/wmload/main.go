// Command wmload generates mixed compile/run traffic against a running
// wmserved instance and prints a latency/status report.  The traffic
// blends repeat programs (cache hits), unique programs (cold
// compiles), and all four optimization levels, so a short run exercises
// the cache, the coalescer, and the admission queue together.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wmstream/internal/buildinfo"
	"wmstream/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url         = flag.String("url", "http://localhost:8037", "wmserved base URL")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = flag.Int("c", 16, "concurrent client goroutines")
		hitFrac     = flag.Float64("hit-fraction", 0.7, "fraction of requests reusing a fixed program set")
		runFrac     = flag.Float64("run-fraction", 0.5, "fraction of requests hitting /run instead of /compile")
		seed        = flag.Int64("seed", 1, "traffic mix seed")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("wmload"))
		return 0
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wmload: unexpected arguments %q\n", flag.Args())
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:     *url,
		Duration:    *duration,
		Concurrency: *concurrency,
		HitFraction: *hitFrac,
		RunFraction: *runFrac,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wmload: %v\n", err)
		return 1
	}
	fmt.Print(rep.String())
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "wmload: no requests completed (is wmserved running?)")
		return 1
	}
	return 0
}
