// Command wmload generates mixed compile/run traffic against a running
// wmserved instance and prints a latency/status report with
// per-endpoint p50/p95/p99.  The traffic blends repeat programs (cache
// hits), unique programs (cold compiles), and all four optimization
// levels, so a short run exercises the cache, the coalescer, and the
// admission queue together.  With -jobs (or -job-fraction), a share of
// the traffic drives full asynchronous job lifecycles — submit,
// long-poll progress generations, and occasional mid-flight cancels —
// exercising the job queue, the fairness scheduler, and the TTL
// expiry path.  With -trace, every request carries a W3C traceparent
// so the server records a full trace for it, and the report adds the
// server-side per-stage timing breakdown (queue wait, compile, sim,
// journal) plus the trace ID of the slowest request for follow-up in
// GET /debug/traces.  With -job-heavy, every job runs one fixed
// compute-heavy program and the report's "jobs done/s" line becomes
// the headline — the scenario for comparing wmserved -batch settings.
// With -endpoints a,b,c the load spreads across the nodes of a
// wmserved cluster — round-robin by default, or pinned per program
// with -affinity key — and the report adds per-node request, error,
// and latency breakdowns.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wmstream/internal/buildinfo"
	"wmstream/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url         = flag.String("url", "http://localhost:8037", "wmserved base URL")
		endpoints   = flag.String("endpoints", "", "comma-separated base URLs of a wmserved cluster; overrides -url and adds per-node breakdowns")
		affinity    = flag.String("affinity", "rr", "multi-endpoint target policy: rr (round-robin) or key (pin each program to one node)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = flag.Int("c", 16, "concurrent client goroutines")
		hitFrac     = flag.Float64("hit-fraction", 0.7, "fraction of requests reusing a fixed program set")
		runFrac     = flag.Float64("run-fraction", 0.5, "fraction of requests hitting /run instead of /compile")
		jobs        = flag.Bool("jobs", false, "drive all traffic through the asynchronous job API")
		jobFrac     = flag.Float64("job-fraction", 0, "fraction of iterations driving a job lifecycle (submit, poll, cancel)")
		jobHeavy    = flag.Bool("job-heavy", false, "job traffic submits one fixed compute-heavy program and reports jobs done/s (the wmserved -batch comparison scenario; implies -jobs)")
		retries     = flag.Int("retries", 3, "retry shed (429/503) responses this many times with capped backoff, honoring Retry-After")
		trace       = flag.Bool("trace", false, "send a traceparent with every request and report the server's per-stage timing breakdown")
		seed        = flag.Int64("seed", 1, "traffic mix seed")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("wmload"))
		return 0
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wmload: unexpected arguments %q\n", flag.Args())
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	jf := *jobFrac
	if (*jobs || *jobHeavy) && jf == 0 {
		jf = 1
	}
	var urls []string
	if *endpoints != "" {
		for _, u := range strings.Split(*endpoints, ",") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			urls = append(urls, u)
		}
	}
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:     *url,
		BaseURLs:    urls,
		Affinity:    *affinity,
		Duration:    *duration,
		Concurrency: *concurrency,
		HitFraction: *hitFrac,
		RunFraction: *runFrac,
		JobFraction: jf,
		JobHeavy:    *jobHeavy,
		Seed:        *seed,
		Retries:     *retries,
		Trace:       *trace,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wmload: %v\n", err)
		return 1
	}
	fmt.Print(rep.String())
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "wmload: no requests completed (is wmserved running?)")
		return 1
	}
	return 0
}
