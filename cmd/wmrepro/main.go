// wmrepro regenerates the paper's tables and figures.
//
// Usage:
//
//	wmrepro -fig 4|5|6|7        one figure's listing
//	wmrepro -table 1            Table I  (recurrence optimization, 5 machines)
//	wmrepro -table 2            Table II (streaming, 9 programs)
//	wmrepro -table 34           Tables III/IV substitute (optimizer quality)
//	wmrepro -all                everything
//	wmrepro -size n -reps n     Table I workload parameters
//	wmrepro -bench-json f.json  per-benchmark telemetry report
//
// -bench-json runs every benchmark at -O0 and -O3 and writes a JSON
// array of records — cycles, memory traffic, stream throughput, and
// each functional unit's utilization and stall attribution — for
// machine consumption (dashboards, regression diffs).
//
// Table I defaults to the paper's array size of 100,000 (with the
// kernel repeated so it dominates); pass a smaller -size for a quick
// run.
package main

import (
	"flag"
	"fmt"
	"os"

	"wmstream/internal/bench"
	"wmstream/internal/buildinfo"
	"wmstream/internal/cli"
	"wmstream/internal/experiments"
	"wmstream/internal/sim"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate figure 4, 5, 6 or 7")
	table := flag.String("table", "", "regenerate table: 1, 2 or 34")
	all := flag.Bool("all", false, "regenerate everything")
	size := flag.Int("size", 100000, "Table I array size")
	reps := flag.Int("reps", 10, "Table I kernel repetitions")
	benchJSON := flag.String("bench-json", "", "write per-benchmark telemetry records to this JSON file")
	engineName := flag.String("engine", "auto", "simulation engine for -bench-json runs: auto, translated, fast, or reference")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("wmrepro"))
		return
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}

	did := false
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fatal(err)
		}
		err = bench.WriteJSON(f, bench.Programs(), []int{0, 3}, engine)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		did = true
	}
	if *all || *fig == 4 || *fig == 5 || *fig == 7 {
		stages := []int{*fig}
		if *all {
			stages = []int{4, 5, 7}
		}
		for _, st := range stages {
			s, err := experiments.Figure(st)
			if err != nil {
				fatal(err)
			}
			fmt.Println(s)
			did = true
		}
	}
	if *all || *fig == 6 {
		s, err := experiments.Figure6()
		if err != nil {
			fatal(err)
		}
		fmt.Println(s)
		did = true
	}
	if *all || *table == "1" {
		rows, err := experiments.Table1(*size, *reps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
		did = true
	}
	if *all || *table == "2" {
		rows, err := experiments.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable2(rows))
		did = true
	}
	if *all || *table == "34" {
		rows, g1, g3, err := experiments.Table34()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable34(rows, g1, g3))
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, cli.RenderError("wmrepro", err))
	os.Exit(1)
}
